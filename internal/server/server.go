package server

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	avd "github.com/taskpar/avd"
	"github.com/taskpar/avd/internal/chaos"
	"github.com/taskpar/avd/internal/obs"
)

// Config parameterizes a Service. The zero value is a sane production
// default: GOMAXPROCS shards (capped at 8), 64 queued runs per shard,
// 32 MiB uploads, 30 s default / 5 min max deadlines, 3 attempts with
// 25 ms jittered base backoff, and 4096 retained runs.
type Config struct {
	// Shards is the worker-shard count; runs are assigned by trace
	// content hash so identical uploads land on the same shard. 0 means
	// min(GOMAXPROCS, 8).
	Shards int
	// QueueDepth bounds each shard's pending-run queue; admissions
	// beyond it are rejected with 429 + Retry-After. 0 means 64.
	QueueDepth int
	// MaxBodyBytes bounds one upload's encoded size, enforced before
	// any allocation proportional to the claimed contents. 0 = 32 MiB.
	MaxBodyBytes int64
	// UploadTimeout bounds how long one upload may take to arrive, so a
	// slow (or stalled) client occupies a handler for a bounded time.
	// 0 means 10 s.
	UploadTimeout time.Duration
	// DefaultDeadline bounds a run that requested none (0 = 30 s);
	// MaxDeadline clamps client-requested deadlines (0 = 5 min).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// MaxAttempts caps executions of one run when attempts fail
	// transiently (worker crash); 0 means 3.
	MaxAttempts int
	// RetryBackoff is the base of the jittered exponential backoff
	// between attempts; 0 means 25 ms.
	RetryBackoff time.Duration
	// MemoryBudget bounds each run's analysis metadata (avd
	// Options.MemoryBudget); 0 = unlimited.
	MemoryBudget int64
	// MaxViolations caps each run's admitted violations; 0 = uncapped.
	MaxViolations int64
	// MaxRuns bounds the retained-run registry; admitting past it
	// evicts the oldest terminal runs, and if none are evictable the
	// admission is rejected. 0 means 4096.
	MaxRuns int
	// ReportCacheSize bounds the cross-run report cache: re-submitting
	// a byte-identical trace with the same analysis options completes
	// instantly with the memoized report instead of re-running the
	// analysis. 0 means 256; negative disables the cache.
	ReportCacheSize int
	// SnapshotInterval paces the periodic live-analysis frames on a
	// running run's event stream (0 = 250 ms). Frames are generated only
	// while someone is subscribed.
	SnapshotInterval time.Duration
	// WebhookURL, when set, enables violation notifications: every
	// ERROR finding of a terminal run is POSTed to this URL as JSON,
	// with jittered-backoff retry and delivery counters on /metrics.
	WebhookURL string
	// WebhookQueue bounds the pending-notification queue; deliveries
	// beyond it are dropped and counted (0 = 256).
	WebhookQueue int
	// WebhookAttempts caps delivery attempts per notification (0 = 3).
	WebhookAttempts int
	// Chaos enables deterministic fault injection in the service layer
	// (worker crashes, admission rejections); the zero value disables
	// it.
	Chaos chaos.Config
}

// withDefaults resolves zero fields to their documented defaults.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
		if c.Shards > 8 {
			c.Shards = 8
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.UploadTimeout <= 0 {
		c.UploadTimeout = 10 * time.Second
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.MaxRuns <= 0 {
		c.MaxRuns = 4096
	}
	if c.ReportCacheSize == 0 {
		c.ReportCacheSize = 256
	}
	if c.SnapshotInterval <= 0 {
		c.SnapshotInterval = 250 * time.Millisecond
	}
	if c.WebhookQueue <= 0 {
		c.WebhookQueue = 256
	}
	if c.WebhookAttempts <= 0 {
		c.WebhookAttempts = 3
	}
	return c
}

// Metrics are the server-level gauges and counters served on the debug
// endpoint. Counters are monotone; gauges are instantaneous levels with
// high watermarks.
type Metrics struct {
	admitted       atomic.Int64
	rejectedQueue  atomic.Int64 // 429: shard queue full (incl. injected)
	rejectedBody   atomic.Int64 // 400/408/413: invalid, slow, oversized
	rejectedDrain  atomic.Int64 // 503: draining
	rejectedChaos  atomic.Int64 // injected subset of rejectedQueue
	retries        atomic.Int64
	workerPanics   atomic.Int64
	cacheHits      atomic.Int64 // admissions served from the report cache
	cacheMisses    atomic.Int64 // cacheable admissions that had to run
	done           atomic.Int64
	failed         atomic.Int64
	canceled       atomic.Int64
	inFlight       obs.Gauge
	queued         obs.Gauge // all shards combined
	perShardQueued []obs.Gauge

	// Live-stream plane: current SSE subscribers and snapshot frames
	// dropped to slow ones.
	streamSubs          obs.Gauge
	streamDroppedFrames atomic.Int64

	// Webhook delivery counters (zero unless Config.WebhookURL is set).
	webhookDelivered atomic.Int64
	webhookFailed    atomic.Int64
	webhookDropped   atomic.Int64

	// Analysis aggregates: per-run terminal report counters folded into
	// server-wide totals when a run that actually executed finishes
	// (cache hits fold nothing — no analysis ran). These mirror the
	// fields of a run's Snapshot/Report on /metrics.
	anViolations      atomic.Int64
	anDrops           atomic.Int64
	anTaskPanics      atomic.Int64
	anLocations       atomic.Int64
	anFilterHits      atomic.Int64
	anFilterMisses    atomic.Int64
	anBatchFlushes    atomic.Int64
	anBatchedAccesses atomic.Int64
	anWindowElisions  atomic.Int64

	// Run-latency histograms: time spent queued (admit to first
	// execution) and executing (first execution to terminal), in
	// nanoseconds, exposed on /metrics in seconds.
	queueWait   obs.Histogram
	runDuration obs.Histogram
}

// MetricsView is the JSON snapshot of Metrics.
type MetricsView struct {
	Admitted          int64   `json:"admitted"`
	RejectedQueueFull int64   `json:"rejected_queue_full"`
	RejectedBody      int64   `json:"rejected_body"`
	RejectedDraining  int64   `json:"rejected_draining"`
	RejectedInjected  int64   `json:"rejected_injected"`
	Retries           int64   `json:"retries"`
	WorkerPanics      int64   `json:"worker_panics"`
	Done              int64   `json:"done"`
	Failed            int64   `json:"failed"`
	Canceled          int64   `json:"canceled"`
	InFlight          int64   `json:"in_flight"`
	InFlightMax       int64   `json:"in_flight_max"`
	Queued            int64   `json:"queued"`
	QueuedMax         int64   `json:"queued_max"`
	QueuedPerShard    []int64 `json:"queued_per_shard"`
	// Report-cache gauges: hits are admissions answered from the
	// memoized report of an earlier identical run, misses are cacheable
	// admissions that had to execute, entries the current cache size.
	ReportCacheHits    int64 `json:"report_cache_hits"`
	ReportCacheMisses  int64 `json:"report_cache_misses"`
	ReportCacheEntries int64 `json:"report_cache_entries"`
	// Live-stream gauges: current SSE subscribers and snapshot frames
	// dropped to slow ones.
	StreamSubscribers   int64 `json:"stream_subscribers"`
	StreamDroppedFrames int64 `json:"stream_dropped_frames"`
	// Webhook delivery counters (zero unless a webhook is configured).
	WebhookDelivered int64 `json:"webhook_delivered"`
	WebhookFailed    int64 `json:"webhook_failed"`
	WebhookDropped   int64 `json:"webhook_dropped"`
	// Analysis aggregates: terminal-report counters of every executed
	// run folded into server totals.
	AnalysisViolations      int64 `json:"analysis_violations"`
	AnalysisDrops           int64 `json:"analysis_drops"`
	AnalysisTaskPanics      int64 `json:"analysis_task_panics"`
	AnalysisLocations       int64 `json:"analysis_locations"`
	AnalysisFilterHits      int64 `json:"analysis_filter_hits"`
	AnalysisFilterMisses    int64 `json:"analysis_filter_misses"`
	AnalysisBatchFlushes    int64 `json:"analysis_batch_flushes"`
	AnalysisBatchedAccesses int64 `json:"analysis_batched_accesses"`
	AnalysisWindowElisions  int64 `json:"analysis_window_elisions"`
}

// view snapshots the metrics.
func (m *Metrics) view() MetricsView {
	per := make([]int64, len(m.perShardQueued))
	for i := range m.perShardQueued {
		per[i] = m.perShardQueued[i].Load()
	}
	return MetricsView{
		Admitted:          m.admitted.Load(),
		RejectedQueueFull: m.rejectedQueue.Load(),
		RejectedBody:      m.rejectedBody.Load(),
		RejectedDraining:  m.rejectedDrain.Load(),
		RejectedInjected:  m.rejectedChaos.Load(),
		Retries:           m.retries.Load(),
		WorkerPanics:      m.workerPanics.Load(),
		Done:              m.done.Load(),
		Failed:            m.failed.Load(),
		Canceled:          m.canceled.Load(),
		InFlight:          m.inFlight.Load(),
		InFlightMax:       m.inFlight.Max(),
		Queued:            m.queued.Load(),
		QueuedMax:         m.queued.Max(),
		QueuedPerShard:    per,
		ReportCacheHits:   m.cacheHits.Load(),
		ReportCacheMisses: m.cacheMisses.Load(),

		StreamSubscribers:   m.streamSubs.Load(),
		StreamDroppedFrames: m.streamDroppedFrames.Load(),

		WebhookDelivered: m.webhookDelivered.Load(),
		WebhookFailed:    m.webhookFailed.Load(),
		WebhookDropped:   m.webhookDropped.Load(),

		AnalysisViolations:      m.anViolations.Load(),
		AnalysisDrops:           m.anDrops.Load(),
		AnalysisTaskPanics:      m.anTaskPanics.Load(),
		AnalysisLocations:       m.anLocations.Load(),
		AnalysisFilterHits:      m.anFilterHits.Load(),
		AnalysisFilterMisses:    m.anFilterMisses.Load(),
		AnalysisBatchFlushes:    m.anBatchFlushes.Load(),
		AnalysisBatchedAccesses: m.anBatchedAccesses.Load(),
		AnalysisWindowElisions:  m.anWindowElisions.Load(),
	}
}

// Service is the trace-checking service: a bounded run registry, one
// bounded queue plus worker goroutine per shard, and the lifecycle
// plumbing between them. Create with New, serve its Handler, and
// Shutdown to drain.
type Service struct {
	cfg   Config
	plane *chaos.Plane
	cache *reportCache

	mu     sync.Mutex
	runs   map[int64]*Run
	order  []int64 // admission order, for listing and eviction
	nextID int64
	closed bool // draining: admission refused, queues closed

	shards  []chan *Run
	wg      sync.WaitGroup
	metrics Metrics

	// registry names every metric for the Prometheus /metrics endpoint.
	registry *obs.Registry
	// webhook delivers per-finding notifications (nil unless configured).
	webhook *webhookSender

	// drainCancel cancels every in-flight run when the drain deadline
	// passes.
	draining atomic.Bool
}

// New creates a service and starts its shard workers.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:    cfg,
		plane:  chaos.New(cfg.Chaos),
		cache:  newReportCache(cfg.ReportCacheSize),
		runs:   make(map[int64]*Run),
		shards: make([]chan *Run, cfg.Shards),
	}
	s.metrics.perShardQueued = make([]obs.Gauge, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = make(chan *Run, cfg.QueueDepth)
		s.wg.Add(1)
		go s.worker(i)
	}
	s.registry = s.buildRegistry()
	if cfg.WebhookURL != "" {
		s.webhook = newWebhookSender(cfg, &s.metrics)
	}
	return s
}

// newHub creates a run's stream hub, folding its drop and subscriber
// accounting into the service metrics.
func (s *Service) newHub() *streamHub {
	return newStreamHub(&s.metrics.streamDroppedFrames, &s.metrics.streamSubs)
}

// Metrics returns the current server-level metrics snapshot.
func (s *Service) Metrics() MetricsView {
	v := s.metrics.view()
	v.ReportCacheEntries = int64(s.cache.size())
	return v
}

// ChaosStats returns the injected-fault counters of the service's chaos
// plane (zero when chaos is not configured).
func (s *Service) ChaosStats() chaos.PlaneStats { return s.plane.Stats() }

// shardOf assigns a run to a shard by hashing the encoded trace bytes,
// so identical traces deterministically land on the same shard and its
// worker's metadata locality.
func (s *Service) shardOf(body []byte) int {
	h := fnv.New32a()
	h.Write(body)
	return int(h.Sum32() % uint32(len(s.shards)))
}

// AdmitError is the typed admission refusal: Status is the HTTP status
// the handler maps it to, RetryAfter a client backoff hint (nonzero for
// retryable refusals).
type AdmitError struct {
	Status     int
	Msg        string
	RetryAfter time.Duration
}

// Error implements error.
func (e *AdmitError) Error() string { return e.Msg }

// Admit registers and enqueues a new run for the already-decoded trace
// (body is the encoded upload, used for shard hashing and accounting).
// It never blocks: a full shard queue, a saturated registry, a draining
// service, or an injected chaos rejection refuse the admission with an
// *AdmitError carrying the client-facing status and Retry-After hint.
func (s *Service) Admit(tr *avd.Trace, body []byte, opts RunOptions) (*Run, error) {
	return s.AdmitLint(tr, body, opts, nil)
}

// AdmitLint is Admit with staticavd candidate messages attached: the
// run's dynamic findings that confirm a compile-time candidate are
// annotated with it. Lint-carrying runs bypass the report cache both
// ways — their findings embed upload-specific annotations that must not
// leak into (or be served from) the trace-keyed cache.
func (s *Service) AdmitLint(tr *avd.Trace, body []byte, opts RunOptions, lint []string) (*Run, error) {
	if _, ok := opts.checkerKind(); !ok {
		return nil, &AdmitError{Status: 400, Msg: fmt.Sprintf("unknown checker %q", opts.Checker)}
	}
	if opts.Deadline <= 0 || opts.Deadline > s.cfg.MaxDeadline {
		if opts.Deadline > s.cfg.MaxDeadline {
			opts.Deadline = s.cfg.MaxDeadline
		} else {
			opts.Deadline = s.cfg.DefaultDeadline
		}
	}
	if s.plane.RejectAdmit() {
		s.metrics.rejectedChaos.Add(1)
		s.metrics.rejectedQueue.Add(1)
		return nil, &AdmitError{Status: 429, Msg: "queue overflow (injected)", RetryAfter: time.Second}
	}
	shard := s.shardOf(body)
	// The cache probe runs after the chaos draw so fault-injection
	// decision streams see the same admission ordinals whether or not
	// earlier identical traces were cached.
	cacheable := s.cfg.ReportCacheSize > 0 && len(lint) == 0
	var key cacheKey
	if cacheable {
		key = keyFor(body, opts)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.metrics.rejectedDrain.Add(1)
		return nil, &AdmitError{Status: 503, Msg: "service draining", RetryAfter: 5 * time.Second}
	}
	if len(s.runs) >= s.cfg.MaxRuns && !s.evictLocked() {
		s.mu.Unlock()
		s.metrics.rejectedQueue.Add(1)
		return nil, &AdmitError{Status: 429, Msg: "run registry full", RetryAfter: time.Second}
	}
	if cacheable {
		if e, ok := s.cache.get(key); ok {
			// An identical trace with identical options already completed:
			// register the run directly in its terminal state, findings
			// and report copied from the memoized analysis. It never
			// touches a shard queue.
			s.nextID++
			now := time.Now()
			run := &Run{
				id:       s.nextID,
				shard:    shard,
				status:   StatusDone,
				tr:       tr,
				traceSz:  int64(len(body)),
				opts:     opts,
				created:  now,
				started:  now,
				finished: now,
				report:   e.report,
				results:  append([]Result(nil), e.results...),
				hub:      s.newHub(),
			}
			s.runs[run.id] = run
			s.order = append(s.order, run.id)
			s.mu.Unlock()
			s.metrics.admitted.Add(1)
			s.metrics.cacheHits.Add(1)
			s.metrics.done.Add(1)
			// The stream of a cache-served run replays the memoized
			// outcome: violations with their triple identity straight from
			// the report (so reduction still matches /report), then the
			// remaining findings and the terminal transition.
			run.hub.publish(StreamEvent{Kind: EventState, Status: StatusSubmitted})
			publishReportViolations(run.hub, run.report)
			publishResults(run.hub, run.results, true)
			run.hub.publish(StreamEvent{Kind: EventState, Status: StatusDone})
			run.hub.close()
			s.notifyFindings(run, run.results)
			return run, nil
		}
	}
	s.nextID++
	run := &Run{
		id:      s.nextID,
		shard:   shard,
		status:  StatusSubmitted,
		tr:      tr,
		traceSz: int64(len(body)),
		opts:    opts,
		created: time.Now(),
		ckey:    key,
		cacheOK: cacheable,
		hub:     s.newHub(),
		lint:    lint,
	}
	// Enqueue under the registry lock so drain's queue close cannot race
	// the send; the channel send is non-blocking either way.
	select {
	case s.shards[shard] <- run:
	default:
		s.mu.Unlock()
		s.metrics.rejectedQueue.Add(1)
		return nil, &AdmitError{Status: 429, Msg: fmt.Sprintf("shard %d queue full", shard), RetryAfter: time.Second}
	}
	s.runs[run.id] = run
	s.order = append(s.order, run.id)
	s.mu.Unlock()
	s.metrics.admitted.Add(1)
	if cacheable {
		s.metrics.cacheMisses.Add(1)
	}
	s.metrics.queued.Add(1)
	s.metrics.perShardQueued[shard].Add(1)
	run.hub.publish(StreamEvent{Kind: EventState, Status: StatusSubmitted})
	return run, nil
}

// evictLocked removes the oldest terminal runs to make room for one
// admission; it reports whether space was freed. Active runs are never
// evicted, so a registry full of live work refuses instead.
func (s *Service) evictLocked() bool {
	for i, id := range s.order {
		r := s.runs[id]
		if r == nil || r.Status().Terminal() {
			s.order = append(s.order[:i], s.order[i+1:]...)
			delete(s.runs, id)
			return true
		}
	}
	return false
}

// Get returns a run by ID.
func (s *Service) Get(id int64) (*Run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	return r, ok
}

// Runs lists the registered runs in admission order.
func (s *Service) Runs() []*Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Run, 0, len(s.order))
	for _, id := range s.order {
		if r := s.runs[id]; r != nil {
			out = append(out, r)
		}
	}
	return out
}

// Cancel requests cancellation of a run: a queued run turns CANCELED
// immediately (its worker will skip it), a running run has its context
// canceled and turns CANCELED when the replay unwinds. Terminal runs
// are left untouched. The returned status is the run's state after the
// request.
func (s *Service) Cancel(id int64) (Status, bool) {
	r, ok := s.Get(id)
	if !ok {
		return "", false
	}
	r.mu.Lock()
	switch r.status {
	case StatusSubmitted:
		r.canceled = true
		r.status = StatusCanceled
		r.finished = time.Now()
		r.results = []Result{{Status: ResultWarn, Code: CodePartial, Title: "canceled before start"}}
		s.metrics.canceled.Add(1)
		publishResults(r.hub, r.results, false)
		r.hub.publish(StreamEvent{Kind: EventState, Status: StatusCanceled})
		r.hub.close()
	case StatusRunning:
		if r.cancel != nil {
			r.cancel()
		}
	}
	st := r.status
	r.mu.Unlock()
	return st, true
}
