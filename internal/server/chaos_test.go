package server_test

import (
	"net/http"
	"sync"
	"testing"
	"time"

	"github.com/taskpar/avd/internal/chaos"
	"github.com/taskpar/avd/internal/server"
)

// TestChaosWorkerCrashRetriesToDone runs a fleet of submissions under a
// heavy (but sub-certain) injected crash rate and verifies the core
// robustness invariants: the server never dies, every admitted run
// reaches a terminal state, crashes are retried (some runs succeed
// after retries), and runs that exhaust their attempts FAIL with the
// worker-crash finding rather than hanging.
func TestChaosWorkerCrashRetriesToDone(t *testing.T) {
	_, body := genTrace(t, 4)
	svc, ts := testServer(t, server.Config{
		Shards:       2,
		QueueDepth:   64,
		MaxAttempts:  3,
		RetryBackoff: time.Millisecond,
		Chaos:        chaos.Config{Seed: 7, WorkerCrashProb: 0.5},
	})

	const n = 32
	var ids []int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, resp := submit(t, ts, body, "")
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("submit: status %d", resp.StatusCode)
				return
			}
			mu.Lock()
			ids = append(ids, v.ID)
			mu.Unlock()
		}()
	}
	wg.Wait()

	done, failed := 0, 0
	for _, id := range ids {
		v := poll(t, ts, id, 30*time.Second)
		switch v.Status {
		case server.StatusDone:
			done++
		case server.StatusFailed:
			failed++
			found := false
			for _, r := range v.Results {
				if r.Code == server.CodeWorkerCrash && r.Status == server.ResultError {
					found = true
				}
			}
			if !found {
				t.Errorf("run %d FAILED without worker-crash finding: %+v", id, v.Results)
			}
		default:
			t.Errorf("run %d terminal state %s", id, v.Status)
		}
	}
	// At p=0.5 and 3 attempts, P(all fail) = 1/8 per run: among 32 runs
	// both outcomes occur with near-certainty, and the seed is fixed.
	if done == 0 {
		t.Fatalf("no run survived the crash storm (%d failed)", failed)
	}
	m := svc.Metrics()
	if m.WorkerPanics == 0 || m.Retries == 0 {
		t.Fatalf("no crashes/retries recorded under WorkerCrashProb=0.5: %+v", m)
	}
	if m.Done+m.Failed != int64(len(ids)) {
		t.Fatalf("terminal accounting off: %+v vs %d runs", m, len(ids))
	}
	if cs := svc.ChaosStats(); cs.WorkerCrashes != m.WorkerPanics {
		t.Fatalf("chaos plane counted %d crashes, metrics %d", cs.WorkerCrashes, m.WorkerPanics)
	}
}

// TestChaosAdmitReject: with injected queue overflow at p=1 every
// admission answers 429 with Retry-After, nothing is registered, and
// the injected rejections are distinguishable in the metrics.
func TestChaosAdmitReject(t *testing.T) {
	_, body := genTrace(t, 4)
	svc, ts := testServer(t, server.Config{
		Chaos: chaos.Config{Seed: 3, AdmitRejectProb: 1},
	})
	for i := 0; i < 3; i++ {
		_, resp := submit(t, ts, body, "")
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("submit %d: status %d, want 429", i, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("injected 429 without Retry-After")
		}
	}
	m := svc.Metrics()
	if m.Admitted != 0 {
		t.Fatalf("injected rejection admitted runs: %+v", m)
	}
	if m.RejectedInjected != 3 || m.RejectedQueueFull != 3 {
		t.Fatalf("rejection accounting: %+v", m)
	}
	if cs := svc.ChaosStats(); cs.AdmitRejects != 3 {
		t.Fatalf("chaos plane counted %d admit rejects", cs.AdmitRejects)
	}
}

// TestPoisonedRunContained: a run whose analysis panics must fail alone;
// the worker survives to run the next trace on the same shard.
func TestPoisonedRunContained(t *testing.T) {
	_, body := genTrace(t, 4)
	_, ts := testServer(t, server.Config{
		Shards:       1,
		MaxAttempts:  2,
		RetryBackoff: time.Millisecond,
		Chaos:        chaosAllCrash(),
	})
	v1, _ := submit(t, ts, body, "")
	if got := poll(t, ts, v1.ID, 10*time.Second); got.Status != server.StatusFailed {
		t.Fatalf("crash-looped run finished %s, want FAILED", got.Status)
	}
	// Same shard, same worker goroutine — the next run must still be
	// picked up (it too will fail under p=1, but it must terminate).
	v2, resp := submit(t, ts, body, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-poison submit: %d", resp.StatusCode)
	}
	if got := poll(t, ts, v2.ID, 10*time.Second); !got.Status.Terminal() {
		t.Fatalf("worker died after poisoned run: %s", got.Status)
	}
}
