package server

import (
	"hash/fnv"
	"sync"

	avd "github.com/taskpar/avd"
)

// cacheKey identifies one analysis outcome across runs: the full 64-bit
// content hash of the encoded upload plus its exact length (a hash
// collision must also collide in size to alias), and the analysis
// options that shape the report. The deadline is deliberately excluded:
// a completed analysis does not depend on how long it was allowed to
// take, so re-submissions with different deadlines still hit.
type cacheKey struct {
	hash    uint64
	size    int64
	checker string
	strict  bool
}

// keyFor hashes the encoded upload and normalizes the options into a
// cache key. The empty checker name aliases "optimized" (the documented
// default), so the two spellings of the same analysis share an entry.
func keyFor(body []byte, opts RunOptions) cacheKey {
	h := fnv.New64a()
	h.Write(body)
	checker := opts.Checker
	if checker == "" {
		checker = "optimized"
	}
	return cacheKey{hash: h.Sum64(), size: int64(len(body)), checker: checker, strict: opts.Strict}
}

// cachedReport is one memoized terminal analysis: the report and the
// findings list exactly as the original DONE run recorded them, so a
// cache-served run renders a byte-identical /report and findings view.
type cachedReport struct {
	report  avd.Report
	results []Result
}

// reportCache memoizes the reports of successfully completed (DONE)
// runs keyed by trace content and analysis options. Re-submitting an
// identical trace then completes at admission without queueing or
// re-analysis — sound because replay is deterministic: the same trace
// under the same options always produces the same report.
//
// The cache is deliberately independent of the run registry: evicting a
// terminal run to make registry room does not forget its report, so a
// busy server keeps answering repeats long after the original run aged
// out. Its own bound is a FIFO over insertion order.
//
// Interrupted and failed runs are never cached — their reports describe
// a prefix or an accident of scheduling, not the trace.
type reportCache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cachedReport
	order   []cacheKey // insertion order, for FIFO eviction
	cap     int
}

// newReportCache creates a cache bounded to capacity entries; a
// non-positive capacity disables caching (get always misses, put is a
// no-op).
func newReportCache(capacity int) *reportCache {
	return &reportCache{entries: make(map[cacheKey]*cachedReport), cap: capacity}
}

// get returns the memoized analysis for key, if any.
func (c *reportCache) get(key cacheKey) (*cachedReport, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	return e, ok
}

// put memoizes one DONE run's outcome, evicting the oldest entry when
// the cache is full. Results are copied: the registry's Run mutates its
// own slice header freely.
func (c *reportCache) put(key cacheKey, rep avd.Report, results []Result) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return // first writer wins; the report is deterministic anyway
	}
	if len(c.entries) >= c.cap {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = &cachedReport{report: rep, results: append([]Result(nil), results...)}
	c.order = append(c.order, key)
}

// size returns the current entry count.
func (c *reportCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
