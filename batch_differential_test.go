package avd_test

import (
	"math/rand"
	"reflect"
	"testing"

	avd "github.com/taskpar/avd"
	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/oracle"
	"github.com/taskpar/avd/internal/sptest"
	"github.com/taskpar/avd/internal/trace"
)

// The step-granular access coalescer must be invisible in the checker's
// output: buffering a step's accesses and dispatching them at the next
// step or lock boundary reorders nothing (flush order is buffer order)
// and drops only accesses the dedup engine proves are no-op repeats of
// ones already buffered for the same step and lockset. The tests in
// this file compare a batched checker against an unbatched one on the
// same inputs, at the same three strengths as the filter differential:
// byte-identical violation reports on serial traces, identical violated
// location sets on random interleavings, and identical location sets
// between live scheduler runs — plus the oracle anchor.

// replayBatchPair replays tr under opts with batching on and off and
// returns both reports.
func replayBatchPair(t *testing.T, tr *avd.Trace, opts avd.Options) (on, off avd.Report) {
	t.Helper()
	opts.Batch = true
	on, err := avd.ReplayTrace(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Batch = false
	off, err = avd.ReplayTrace(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	return on, off
}

// TestBatchDifferentialExactReports is the strongest form of the
// output-invisibility property: on a serial (depth-first, one-worker)
// schedule, where every step's accesses are contiguous, the batched and
// unbatched checkers must produce byte-identical violation reports —
// same violations, same order, same steps and locksets — in paper mode,
// strict-lock mode, and under injected allocation failures. It also
// covers the batch+no-filter corner: with the dedup engine disabled,
// every buffered access must dispatch, matching the unbatched
// filter-off checker exactly.
func TestBatchDifferentialExactReports(t *testing.T) {
	r := rand.New(rand.NewSource(7801))
	var batched, hits int64
	programs := []*sptest.Program{hammerProgram()}
	for trial := 0; trial < 120; trial++ {
		programs = append(programs, sptest.Random(r, filterCfg()))
	}
	for i, p := range programs {
		tr, err := trace.Compile(p).ScheduleSerial()
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		for _, opts := range []avd.Options{
			{},
			{StrictLockChecks: true},
			{Chaos: &avd.ChaosConfig{Seed: int64(i), AllocFailProb: 0.05}},
			{DisableAccessFilter: true},
		} {
			on, off := replayBatchPair(t, tr, opts)
			if on.ViolationCount != off.ViolationCount ||
				!reflect.DeepEqual(on.Violations, off.Violations) {
				t.Fatalf("program %d opts %+v: batched report differs\nbatched:   %v\nunbatched: %v\nprogram:\n%s",
					i, opts, on.Violations, off.Violations, p)
			}
			if on.Stats.BatchedAccesses == 0 && on.Stats.BatchFlushes != 0 {
				t.Fatalf("program %d: flushes without batched accesses", i)
			}
			if off.Stats.BatchFlushes != 0 || off.Stats.BatchedAccesses != 0 {
				t.Fatalf("program %d: unbatched checker reported batch counters %d/%d",
					i, off.Stats.BatchFlushes, off.Stats.BatchedAccesses)
			}
			if opts.DisableAccessFilter &&
				(on.Stats.FilterHits != 0 || on.Stats.FilterMisses != 0) {
				t.Fatalf("program %d: batched filter-off run reported dedup counters %d/%d",
					i, on.Stats.FilterHits, on.Stats.FilterMisses)
			}
			batched += on.Stats.BatchedAccesses
			hits += on.Stats.FilterHits
		}
	}
	if batched == 0 {
		t.Fatal("no accesses were ever batched across all trials; the differential test is vacuous")
	}
	if hits == 0 {
		t.Fatal("the batch dedup engine never engaged across all trials; the differential test is vacuous")
	}
}

// TestBatchDifferentialRandomSchedules replays random interleavings of
// the same compiled programs: step accesses are no longer contiguous,
// so the metadata evolution may differ slot-by-slot, but the set of
// violated locations must not.
func TestBatchDifferentialRandomSchedules(t *testing.T) {
	r := rand.New(rand.NewSource(7802))
	for trial := 0; trial < 100; trial++ {
		p := sptest.Random(r, filterCfg())
		tr, err := trace.FromProgram(p, r)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		on, off := replayBatchPair(t, tr, avd.Options{})
		if !reflect.DeepEqual(violLocs(on), violLocs(off)) {
			t.Fatalf("trial %d: batched locations %v, unbatched %v\nprogram:\n%s",
				trial, violLocs(on), violLocs(off), p)
		}
	}
}

// TestBatchDifferentialLive runs programs on the real work-stealing
// scheduler with batching on and off (including chaos-perturbed
// schedules): by the checker's schedule-independence, both sessions
// must report the same violated locations.
func TestBatchDifferentialLive(t *testing.T) {
	r := rand.New(rand.NewSource(7803))
	cfg := filterCfg()
	for trial := 0; trial < 40; trial++ {
		p := sptest.Random(r, cfg)
		var chaos *avd.ChaosConfig
		if trial%2 == 1 {
			chaos = &avd.ChaosConfig{Seed: int64(trial), StealProb: 0.3, DelayProb: 0.2, MaxDelaySpins: 8}
		}
		on := execProgram(p, cfg, avd.Options{Workers: 4, Chaos: chaos, Batch: true})
		off := execProgram(p, cfg, avd.Options{Workers: 4, Chaos: chaos})
		if !sameLocs(on, off) {
			t.Fatalf("trial %d: batched live run detected %v, unbatched %v\nprogram:\n%s",
				trial, on, off, p)
		}
	}
}

// TestBatchSerialReplayMatchesOracle anchors the serial-schedule
// differential in ground truth: on programs small enough for the
// all-schedules oracle, the batched serial replay detects exactly the
// violating locations the oracle predicts.
func TestBatchSerialReplayMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(7804))
	for trial := 0; trial < 60; trial++ {
		cfg := sptest.GenConfig{
			MaxItems: 4, MaxDepth: 3, MaxSteps: 10,
			Locations: 2, MaxAccess: 6, Locks: 1, LockProb: 0.25,
		}
		p := sptest.Random(r, cfg)
		tr, err := trace.Compile(p).ScheduleSerial()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rep, err := avd.ReplayTrace(tr, avd.Options{Batch: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := make(map[int]bool)
		for _, v := range rep.Violations {
			got[int(v.Loc-trace.LocBase)] = true
		}
		want := oracle.Violations(sptest.Build(dpst.ArrayLayout, p), oracle.ModePaper)
		if !sameLocs(got, want) {
			t.Fatalf("trial %d: serial batched replay %v, oracle %v\nprogram:\n%s",
				trial, got, want, p)
		}
	}
}

// The window-elision front end (DESIGN.md §4.3) must be just as
// invisible as the coalescer it fronts: an access the handle layer
// elides is one the batch deduplicator would have skipped, so enabling
// or disabling elision may shift counter attribution (dedup hits become
// window elisions) but never the violation report. The tests below
// mirror the batch differential at the same strengths, comparing a
// batched checker with elision on against one with
// Options.DisableWindowElision.

// replayElisionPair replays tr batched with window elision on and off
// and returns both reports.
func replayElisionPair(t *testing.T, tr *avd.Trace, opts avd.Options) (on, off avd.Report) {
	t.Helper()
	opts.Batch = true
	opts.DisableWindowElision = false
	on, err := avd.ReplayTrace(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.DisableWindowElision = true
	off, err = avd.ReplayTrace(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	return on, off
}

// TestElisionDifferentialExactReports: on serial schedules the two runs
// must produce byte-identical violation reports in paper mode, strict
// mode, under injected allocation failures, and in the filter-off
// corner — where disabling the deduplicator implies no elision either,
// so the reports must still agree while both elision counters stay zero.
func TestElisionDifferentialExactReports(t *testing.T) {
	r := rand.New(rand.NewSource(7901))
	var elided int64
	programs := []*sptest.Program{hammerProgram()}
	for trial := 0; trial < 120; trial++ {
		programs = append(programs, sptest.Random(r, filterCfg()))
	}
	for i, p := range programs {
		tr, err := trace.Compile(p).ScheduleSerial()
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		for _, opts := range []avd.Options{
			{},
			{StrictLockChecks: true},
			{Chaos: &avd.ChaosConfig{Seed: int64(i), AllocFailProb: 0.05}},
			{DisableAccessFilter: true},
		} {
			on, off := replayElisionPair(t, tr, opts)
			if on.ViolationCount != off.ViolationCount ||
				!reflect.DeepEqual(on.Violations, off.Violations) {
				t.Fatalf("program %d opts %+v: elision report differs\nelision:    %v\nno elision: %v\nprogram:\n%s",
					i, opts, on.Violations, off.Violations, p)
			}
			if off.Stats.WindowElisions != 0 {
				t.Fatalf("program %d: elision-off run reported %d window elisions",
					i, off.Stats.WindowElisions)
			}
			if opts.DisableAccessFilter && on.Stats.WindowElisions != 0 {
				t.Fatalf("program %d: filter-off run reported %d window elisions (dedup off implies elision off)",
					i, on.Stats.WindowElisions)
			}
			// Attribution may shift between the two counters, but the total
			// skipped+dispatched work is conserved: every access is elided,
			// deduplicated, or dispatched under both configurations.
			if onTot, offTot := on.Stats.WindowElisions+on.Stats.FilterHits+on.Stats.FilterMisses,
				off.Stats.FilterHits+off.Stats.FilterMisses; onTot != offTot {
				t.Fatalf("program %d opts %+v: access accounting differs: %d with elision, %d without",
					i, opts, onTot, offTot)
			}
			elided += on.Stats.WindowElisions
		}
	}
	if elided == 0 {
		t.Fatal("the window-elision cache never engaged across all trials; the differential test is vacuous")
	}
}

// TestElisionDifferentialRandomSchedules replays random interleavings:
// the violated location sets must agree.
func TestElisionDifferentialRandomSchedules(t *testing.T) {
	r := rand.New(rand.NewSource(7902))
	for trial := 0; trial < 100; trial++ {
		p := sptest.Random(r, filterCfg())
		tr, err := trace.FromProgram(p, r)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		on, off := replayElisionPair(t, tr, avd.Options{})
		if !reflect.DeepEqual(violLocs(on), violLocs(off)) {
			t.Fatalf("trial %d: elision locations %v, no-elision %v\nprogram:\n%s",
				trial, violLocs(on), violLocs(off), p)
		}
	}
}

// TestElisionDifferentialLive runs programs on the real work-stealing
// scheduler (including chaos-perturbed schedules): the handle layer's
// elision probe in sched.Task.Access must not change the detected
// location set.
func TestElisionDifferentialLive(t *testing.T) {
	r := rand.New(rand.NewSource(7903))
	cfg := filterCfg()
	for trial := 0; trial < 40; trial++ {
		p := sptest.Random(r, cfg)
		var chaos *avd.ChaosConfig
		if trial%2 == 1 {
			chaos = &avd.ChaosConfig{Seed: int64(trial), StealProb: 0.3, DelayProb: 0.2, MaxDelaySpins: 8}
		}
		on := execProgram(p, cfg, avd.Options{Workers: 4, Chaos: chaos, Batch: true})
		off := execProgram(p, cfg, avd.Options{Workers: 4, Chaos: chaos, Batch: true, DisableWindowElision: true})
		if !sameLocs(on, off) {
			t.Fatalf("trial %d: elision live run detected %v, no-elision %v\nprogram:\n%s",
				trial, on, off, p)
		}
	}
}

// TestElisionSerialReplayMatchesOracle anchors the elision differential
// in ground truth: the batched, eliding serial replay detects exactly
// the violating locations the all-schedules oracle predicts.
func TestElisionSerialReplayMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(7904))
	for trial := 0; trial < 60; trial++ {
		cfg := sptest.GenConfig{
			MaxItems: 4, MaxDepth: 3, MaxSteps: 10,
			Locations: 2, MaxAccess: 6, Locks: 1, LockProb: 0.25,
		}
		p := sptest.Random(r, cfg)
		tr, err := trace.Compile(p).ScheduleSerial()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rep, err := avd.ReplayTrace(tr, avd.Options{Batch: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := make(map[int]bool)
		for _, v := range rep.Violations {
			got[int(v.Loc-trace.LocBase)] = true
		}
		want := oracle.Violations(sptest.Build(dpst.ArrayLayout, p), oracle.ModePaper)
		if !sameLocs(got, want) {
			t.Fatalf("trial %d: serial eliding replay %v, oracle %v\nprogram:\n%s",
				trial, got, want, p)
		}
	}
}
