// Package avd is an atomicity-violation detector for task parallel
// programs, reproducing "Atomicity Violation Checker for Task Parallel
// Programs" (Yoga & Nagarakatte, CGO 2016) in pure Go.
//
// A Session couples a work-stealing fork-join runtime (the Intel TBB
// stand-in) with a dynamic analysis. Programs are written against the
// structured task API — Task.Spawn, Task.Finish, ParallelFor — and
// declare the shared state whose step-level atomicity matters through
// instrumented variables (IntVar, FloatVar, IntArray, FloatArray) and
// instrumented Mutexes; this plays the role of the paper's type-qualifier
// annotations and LLVM instrumentation pass.
//
// The default checker maintains the paper's dynamic program structure
// tree (DPST) and fixed 12-entry-per-location access-history metadata to
// report every conflict-unserializable access triple that is feasible in
// ANY schedule of the given input, not just the observed one. A
// reimplementation of the Velodrome checker (in-trace detection only) is
// included as the evaluation baseline.
//
//	s := avd.NewSession(avd.Options{})
//	defer s.Close()
//	x := s.NewIntVar("X")
//	s.Run(func(t *avd.Task) {
//	    x.Store(t, 10)
//	    t.Finish(func(t *avd.Task) {
//	        t.Spawn(func(t *avd.Task) { x.Add(t, 1) }) // read + write of X
//	        t.Spawn(func(t *avd.Task) { x.Store(t, 7) })
//	    })
//	})
//	for _, v := range s.Report().Violations { fmt.Println(v) }
package avd

import (
	"context"
	"fmt"
	"sync"

	"github.com/taskpar/avd/internal/chaos"
	"github.com/taskpar/avd/internal/checker"
	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/obs"
	"github.com/taskpar/avd/internal/sched"
	"github.com/taskpar/avd/internal/trace"
	"github.com/taskpar/avd/internal/velodrome"
)

// Task is a dynamic task of the fork-join computation; see the sched
// runtime for the full method set (Spawn, Finish, Parallel, Access).
type Task = sched.Task

// Mutex is an instrumented lock whose acquisitions are versioned for the
// checker's lock handling.
type Mutex = sched.Mutex

// Loc identifies an instrumented shared-memory location.
type Loc = sched.Loc

// Violation is a detected atomicity violation (an unserializable access
// triple feasible in some schedule of this input).
type Violation = checker.Violation

// UsageError is the typed panic value raised on API misuse: using a
// session after Close, or using a handle (variable, mutex, task) created
// by one session from another.
type UsageError = sched.UsageError

// TaskPanic is one recovered task panic: the crashing task, the panic
// value, and the stack at recovery. See Report.TaskPanics.
type TaskPanic = sched.TaskPanic

// InjectedPanic is the panic value of a chaos-injected task crash, so
// tests can tell injected failures from genuine ones.
type InjectedPanic = chaos.InjectedPanic

// ChaosStats counts the faults the session's chaos plane has injected.
type ChaosStats = chaos.PlaneStats

// Trace is a recorded execution trace; see Options.RecordTrace,
// Session.RecordedTrace, and ReplayTrace.
type Trace = trace.Trace

// EventCounts are the live observability event totals of a session; see
// Session.Snapshot.
type EventCounts = obs.Counts

// Provenance explains a reported violation: the DPST paths of both
// steps, the locksets held at each access, and whether the
// unserializable order was observed in this schedule or inferred for
// another one. See Violation.Prov and Violation.Explain.
type Provenance = checker.Provenance

// DropEvent describes one shed unit of analysis work: a violation
// refused by Options.MaxViolations (Kind "violation") or a metadata
// allocation denied by the memory budget or chaos plane (Kind names the
// allocation site, e.g. "shadow-leaf"; Bytes is the refused request).
type DropEvent struct {
	Kind  string
	Bytes int64
}

// Observer receives live analysis events from a running session. All
// callbacks run synchronously on the goroutine that produced the event,
// with no session locks that matter to the caller held — but they MUST
// be cheap, non-blocking, and must not call back into the owning
// Session (Report, Snapshot, Close, or any instrumented handle): the
// violation callback fires from inside the checker's per-location
// critical section. cmd/avd-lint's observer pass flags such re-entrant
// calls statically. Nil fields are simply skipped; a nil
// Options.Observer leaves the instrumentation hot path untouched.
type Observer struct {
	// OnViolation fires once per locally-new admitted violation (a
	// triple reported concurrently by several tasks may fire more than
	// once, matching Reporter admission granularity).
	OnViolation func(Violation)
	// OnDrop fires when the session sheds work instead of allocating.
	OnDrop func(DropEvent)
	// OnSaturation fires exactly once, on the first drop of any kind.
	OnSaturation func()
	// OnTaskPanic fires for every recovered task panic (Options.
	// RecoverPanics).
	OnTaskPanic func(TaskPanic)
}

// ParallelFor executes body(i) for i in [lo, hi) with recursive range
// bisection and grain-sized leaves, like tbb::parallel_for.
func ParallelFor(t *Task, lo, hi, grain int, body func(*Task, int)) {
	sched.ParallelFor(t, lo, hi, grain, body)
}

// ParallelRange is the blocked-range form of ParallelFor: each leaf task
// receives a whole [lo, hi) chunk of at most grain iterations, like
// tbb::parallel_for over a blocked_range.
func ParallelRange(t *Task, lo, hi, grain int, body func(*Task, int, int)) {
	sched.ParallelRange(t, lo, hi, grain, body)
}

// CheckerKind selects the dynamic analysis attached to a session.
type CheckerKind int

// Available checkers.
const (
	// CheckerOptimized is the paper's fixed-metadata DPST checker.
	CheckerOptimized CheckerKind = iota
	// CheckerBasic is the unbounded access-history reference checker.
	CheckerBasic
	// CheckerVelodrome is the in-trace Velodrome baseline.
	CheckerVelodrome
	// CheckerNone runs without any instrumentation or DPST: the
	// uninstrumented baseline of the evaluation.
	CheckerNone
)

// String names the configuration as in the paper's figures.
func (k CheckerKind) String() string {
	switch k {
	case CheckerOptimized:
		return "our-prototype"
	case CheckerBasic:
		return "basic"
	case CheckerVelodrome:
		return "velodrome"
	case CheckerNone:
		return "baseline"
	default:
		return fmt.Sprintf("checker(%d)", int(k))
	}
}

// Layout selects the DPST memory layout (the Figure 14 ablation).
type Layout = dpst.Layout

// DPST layouts.
const (
	LayoutArray  = dpst.ArrayLayout
	LayoutLinked = dpst.LinkedLayout
)

// MHPMode selects how may-happen-in-parallel queries are answered.
type MHPMode int

// Available MHP modes.
const (
	// MHPLabels (the default) compares per-node path labels stamped at
	// DPST construction: O(LCA depth) per query, no locks, no shared
	// cache (DePa-style; see internal/dpst/labels.go).
	MHPLabels MHPMode = iota
	// MHPCachedWalk performs the LCA tree walk with the sharded result
	// cache — the paper's Section 4 configuration, kept as a selectable
	// ablation and for faithful Table 1 uniqueness statistics.
	MHPCachedWalk
	// MHPWalk recomputes the tree walk on every query (the Figure 14
	// no-cache ablation).
	MHPWalk
)

// String names the mode as used in the harness configurations.
func (m MHPMode) String() string {
	switch m {
	case MHPLabels:
		return "labels"
	case MHPCachedWalk:
		return "cached-walk"
	case MHPWalk:
		return "walk"
	default:
		return fmt.Sprintf("mhp(%d)", int(m))
	}
}

// Options configures a Session. The zero value is the paper's default
// configuration: the optimized checker on an array DPST with LCA caching
// and GOMAXPROCS workers.
type Options struct {
	// Workers is the worker-thread count; 0 means GOMAXPROCS.
	Workers int
	// Checker picks the analysis; default CheckerOptimized.
	Checker CheckerKind
	// Layout picks the DPST layout; default LayoutArray.
	Layout Layout
	// MHP picks the may-happen-in-parallel mechanism; default MHPLabels.
	MHP MHPMode
	// DisableLCACache turns off memoization of LCA queries. It is only
	// meaningful for the walk-based modes: when MHP is left at the
	// default it selects MHPWalk, preserving the historic behaviour of
	// the Figure 14 no-cache configurations.
	DisableLCACache bool
	// StrictLockChecks enables the extension that reports pairs inside
	// one critical section torn by unsynchronized parallel accesses
	// (see DESIGN.md); off reproduces the paper exactly.
	StrictLockChecks bool
	// DisableAccessFilter turns off the optimized checker's
	// redundant-access filter — the per-task epoch filter and
	// direct-mapped location cache that skip provably redundant repeat
	// accesses before the full dispatch (see DESIGN.md, "Redundant-
	// access filtering"). On by default; disable for ablation
	// measurements and differential testing. The detected violation
	// locations are identical either way. Under Batch the flag disables
	// the batch deduplicator instead (every buffered access dispatches).
	DisableAccessFilter bool
	// Batch enables step-granular batched dispatch (DESIGN.md §4.2): the
	// optimized checker coalesces each task's accesses in a fixed-size
	// per-task buffer, deduplicates provable repeats, and drains the
	// batch at step and lock boundaries with the step node, lockset, and
	// filter state read once per batch instead of once per access.
	// Reported violations are identical to unbatched operation; on a
	// serial schedule the reports are byte-identical. Only meaningful
	// with CheckerOptimized; other checkers ignore it.
	Batch bool
	// DisableWindowElision turns off the handle layer's window-elision
	// front end under Batch (DESIGN.md §4.3): the per-task cache that
	// answers window-saturated repeat accesses before they touch the
	// batch buffer or dedup table. On by default with Batch; disable for
	// ablation measurements and differential testing. Reported
	// violations are identical either way. Sessions that record a trace
	// (RecordTrace) force it off so the recorder observes every access —
	// replaying such a trace with Batch re-enables elision and still
	// reproduces the live report, because elision is output-invisible.
	DisableWindowElision bool
	// ReporterLimit caps retained violation details (0 = default).
	ReporterLimit int
	// RecordTrace additionally captures the execution into a trace
	// (Session.RecordedTrace) that can be re-analyzed offline with
	// ReplayTrace — record once, analyze many.
	RecordTrace bool
	// MemoryBudget bounds the tracked bytes of analysis metadata (shadow
	// table, metadata cells, path-label arenas, LCA cache). 0 means
	// unlimited. When the budget is exhausted the session degrades
	// gracefully instead of growing or failing: new locations stop being
	// admitted, labels fall back to tree walks, the LCA cache stops
	// filling, and the Report carries Saturated plus per-layer drop
	// counts. The budget is never exceeded in tracked bytes.
	MemoryBudget int64
	// MaxViolations caps the distinct violations admitted by the
	// reporter (0 = uncapped); excess violations are counted in
	// Report.Drops.Violations and set Report.Saturated.
	MaxViolations int64
	// RecoverPanics keeps Run from re-raising panics that escape tasks:
	// crashed tasks are recorded in Report.TaskPanics, surviving tasks
	// still join, and the partial violation report stands.
	RecoverPanics bool
	// Chaos enables deterministic fault injection (forced steals,
	// bounded delays, task panics, simulated allocation failures) for
	// robustness testing; nil disables it.
	Chaos *ChaosConfig
	// Observer streams live analysis events (violations, drops,
	// saturation, task panics) to the caller while the program runs —
	// or, for a Replayer, while the trace replays; nil (the default)
	// keeps the hot path free of observer overhead.
	Observer *Observer
}

// ChaosConfig parameterizes the session's deterministic fault-injection
// plane. Probabilities are in [0, 1]; zero disables that fault class.
type ChaosConfig struct {
	// Seed selects the deterministic decision streams.
	Seed int64
	// StealProb is the probability a freshly spawned task is diverted to
	// the scheduler's shared overflow queue — a forced steal.
	StealProb float64
	// DelayProb is the probability a task's start is delayed by a
	// bounded number of scheduling yields.
	DelayProb float64
	// MaxDelaySpins bounds one injected delay (default 64 yields).
	MaxDelaySpins int
	// PanicProb is the probability a task's body is replaced by an
	// injected panic (the root task is exempt).
	PanicProb float64
	// AllocFailProb is the probability a gated metadata allocation is
	// denied, simulating memory pressure.
	AllocFailProb float64
}

// plane builds the internal fault plane (nil when c is nil or all-zero).
func (c *ChaosConfig) plane() *chaos.Plane {
	if c == nil {
		return nil
	}
	return chaos.New(chaos.Config{
		Seed:          c.Seed,
		StealProb:     c.StealProb,
		DelayProb:     c.DelayProb,
		MaxDelaySpins: c.MaxDelaySpins,
		PanicProb:     c.PanicProb,
		AllocFailProb: c.AllocFailProb,
	})
}

// gate combines the chaos plane and memory budget of opts into an
// allocation gate; nil when neither is configured.
func (o Options) gate(plane *chaos.Plane) *chaos.Gate {
	budget := chaos.NewBudget(o.MemoryBudget)
	if plane == nil && budget == nil {
		return nil
	}
	return &chaos.Gate{Plane: plane, Budget: budget}
}

// queryMode maps the public MHP knobs onto the dpst query mode. An
// explicit MHP selection wins; otherwise DisableLCACache downgrades the
// default to the uncached walk as it always has.
func (o Options) queryMode() dpst.QueryMode {
	switch o.MHP {
	case MHPCachedWalk:
		return dpst.ModeCachedWalk
	case MHPWalk:
		return dpst.ModeWalk
	default:
		if o.DisableLCACache {
			return dpst.ModeWalk
		}
		return dpst.ModeLabels
	}
}

// Session owns a runtime, an analysis, and the instrumented state
// handles created through it.
type Session struct {
	sch   *sched.Scheduler
	tree  dpst.Tree
	q     *dpst.Query
	chk   checker.Checker
	velo  *velodrome.Checker
	rec   *trace.Recorder
	plane *chaos.Plane
	gate  *chaos.Gate
	hub   *obs.Hub
}

// setTreeGate attaches the allocation gate to a tree layout's label
// arena; both layouts implement the optional interface.
func setTreeGate(tree dpst.Tree, g *chaos.Gate) {
	if g == nil {
		return
	}
	if gt, ok := tree.(interface{ SetGate(*chaos.Gate) }); ok {
		gt.SetGate(g)
	}
}

// NewSession creates a session and starts its worker pool; Close it when
// done.
func NewSession(opts Options) *Session {
	s := &Session{hub: &obs.Hub{}}
	s.plane = opts.Chaos.plane()
	s.gate = opts.gate(s.plane)
	ob := opts.Observer
	var mon sched.Monitor
	switch opts.Checker {
	case CheckerNone:
		// No tree, no monitor.
	case CheckerVelodrome:
		s.tree = dpst.New(opts.Layout)
		setTreeGate(s.tree, s.gate)
		s.velo = velodrome.New()
		mon = s.velo
	default:
		s.tree = dpst.New(opts.Layout)
		setTreeGate(s.tree, s.gate)
		s.q = dpst.NewQueryMode(s.tree, opts.queryMode())
		s.q.SetGate(s.gate)
		alg := checker.AlgOptimized
		if opts.Checker == CheckerBasic {
			alg = checker.AlgBasic
		}
		rep := checker.NewReporter(opts.ReporterLimit)
		rep.SetMaxViolations(opts.MaxViolations)
		s.chk = checker.New(checker.Options{
			Algorithm:           alg,
			Query:               s.q,
			Reporter:            rep,
			StrictLockChecks:    opts.StrictLockChecks,
			DisableAccessFilter: opts.DisableAccessFilter,
			Batch:               opts.Batch && alg == checker.AlgOptimized,
			// The recorder tees off the same Monitor the checker serves, so
			// a session that records must not elide: an access skipped in
			// the handle layer would vanish from the trace.
			DisableWindowElision: opts.DisableWindowElision || opts.RecordTrace,
			Hub:                  s.hub,
			Gate:                 s.gate,
		})
		mon = s.chk
		// The reporter callbacks only fire on locally-new violations and
		// cap refusals, never on the per-access fast path, so counting
		// into the hub costs nothing when no violation is found.
		rep.SetObserver(func(v Violation) {
			s.hub.Note(obs.EventViolation, uint64(v.Loc))
			if ob != nil && ob.OnViolation != nil {
				ob.OnViolation(v)
			}
		})
		rep.SetDropObserver(func() {
			s.hub.Note(obs.EventDrop, 0)
			s.saturate(ob)
			if ob != nil && ob.OnDrop != nil {
				ob.OnDrop(DropEvent{Kind: "violation"})
			}
		})
	}
	if s.gate != nil {
		s.gate.SetDropObserver(func(site chaos.Site, n int64) {
			s.hub.Note(obs.EventDrop, uint64(site))
			s.saturate(ob)
			if ob != nil && ob.OnDrop != nil {
				ob.OnDrop(DropEvent{Kind: site.String(), Bytes: n})
			}
		})
	}
	if opts.RecordTrace {
		s.rec = trace.NewRecorder()
		if mon == nil {
			mon = s.rec
		} else {
			mon = &teeMonitor{a: mon, b: s.rec}
		}
	}
	s.sch = sched.New(sched.Options{
		Workers:       opts.Workers,
		Tree:          s.tree,
		Monitor:       mon,
		Chaos:         s.plane,
		RecoverPanics: opts.RecoverPanics,
		OnPanic: func(p sched.TaskPanic) {
			s.hub.Note(obs.EventTaskPanic, uint64(p.Task))
			if ob != nil && ob.OnTaskPanic != nil {
				ob.OnTaskPanic(p)
			}
		},
	})
	return s
}

// saturate latches session saturation on the first drop of any kind and
// fires the observer's OnSaturation exactly once.
func (s *Session) saturate(ob *Observer) {
	if s.hub.LatchSaturation(0) && ob != nil && ob.OnSaturation != nil {
		ob.OnSaturation()
	}
}

// ChaosStats returns the fault counters of the session's chaos plane
// (zero when chaos is not configured).
func (s *Session) ChaosStats() ChaosStats {
	return s.plane.Stats()
}

// teeMonitor fans instrumented events out to two monitors, forwarding
// the structural events to whichever of them observes structure.
type teeMonitor struct {
	a, b sched.Monitor
}

func (m *teeMonitor) OnAccess(t *Task, loc Loc, write bool) {
	m.a.OnAccess(t, loc, write)
	m.b.OnAccess(t, loc, write)
}

func (m *teeMonitor) OnAcquire(t *Task, mu *Mutex) {
	m.a.OnAcquire(t, mu)
	m.b.OnAcquire(t, mu)
}

func (m *teeMonitor) OnRelease(t *Task, mu *Mutex) {
	m.a.OnRelease(t, mu)
	m.b.OnRelease(t, mu)
}

func (m *teeMonitor) each(f func(sched.StructureObserver)) {
	if so, ok := m.a.(sched.StructureObserver); ok {
		f(so)
	}
	if so, ok := m.b.(sched.StructureObserver); ok {
		f(so)
	}
}

func (m *teeMonitor) OnSpawn(parent *Task, child int32) {
	m.each(func(so sched.StructureObserver) { so.OnSpawn(parent, child) })
}

func (m *teeMonitor) OnFinishBegin(t *Task) {
	m.each(func(so sched.StructureObserver) { so.OnFinishBegin(t) })
}

func (m *teeMonitor) OnFinishEnd(t *Task) {
	m.each(func(so sched.StructureObserver) { so.OnFinishEnd(t) })
}

func (m *teeMonitor) OnTaskEnd(t *Task) {
	m.each(func(so sched.StructureObserver) { so.OnTaskEnd(t) })
}

// OnInject forwards chaos-injection annotations to whichever side
// observes them (the trace recorder, in practice).
func (m *teeMonitor) OnInject(task int32, fault chaos.Fault) {
	if io, ok := m.a.(sched.InjectObserver); ok {
		io.OnInject(task, fault)
	}
	if io, ok := m.b.(sched.InjectObserver); ok {
		io.OnInject(task, fault)
	}
}

// RecordedTrace returns the trace captured so far (Options.RecordTrace
// must be set; nil otherwise). Call it after Run has returned.
func (s *Session) RecordedTrace() *Trace {
	if s.rec == nil {
		return nil
	}
	return s.rec.Trace()
}

// Typed interruption errors of a context-aware replay
// (ReplayTraceContext, Replayer.Replay). Both also satisfy errors.Is
// against the context sentinel they correspond to.
var (
	// ErrCanceled reports a replay stopped by caller cancellation; the
	// Report returned alongside it covers the analyzed prefix.
	ErrCanceled = trace.ErrCanceled
	// ErrDeadline reports a replay stopped by its context deadline; the
	// Report returned alongside it covers the analyzed prefix.
	ErrDeadline = trace.ErrDeadline
)

// ReplayTrace re-analyzes a recorded (or generated) trace offline with
// the checker selected by opts: the DPST is rebuilt from the trace's
// structural events and every access is fed to the analysis exactly as
// during a live run. CheckerNone is rejected — there is nothing to
// replay into.
func ReplayTrace(tr *Trace, opts Options) (Report, error) {
	return ReplayTraceContext(context.Background(), tr, opts)
}

// ReplayTraceContext is ReplayTrace under a context: the replay polls
// ctx between event batches and stops with ErrCanceled or ErrDeadline
// when the caller cancels or the deadline passes. On interruption the
// returned Report still carries the statistics and violations of the
// analyzed prefix, so deadline-bounded checking degrades to a partial
// result instead of nothing.
func ReplayTraceContext(ctx context.Context, tr *Trace, opts Options) (Report, error) {
	r, err := NewReplayer(opts)
	if err != nil {
		return Report{}, err
	}
	return r.Replay(ctx, tr)
}

// Replayer is one offline analysis instance: the DPST, checker, budget
// gate, and observability hub that ReplayTrace wires internally, held
// open so a long replay can be watched while it runs. Snapshot is safe
// to call from any goroutine concurrently with Replay; avd-serverd
// polls it to serve live per-run statistics. A Replayer analyzes one
// trace: create a fresh one per replay.
type Replayer struct {
	opts   Options
	tree   dpst.Tree
	q      *dpst.Query
	chk    checker.Checker
	velo   *velodrome.Checker
	plane  *chaos.Plane
	gate   *chaos.Gate
	hub    *obs.Hub
	used   bool
	usedMu sync.Mutex
}

// NewReplayer builds the offline analysis selected by opts without
// running it. CheckerNone is rejected — there is nothing to replay into.
func NewReplayer(opts Options) (*Replayer, error) {
	r := &Replayer{opts: opts, hub: &obs.Hub{}}
	r.tree = dpst.New(opts.Layout)
	r.plane = opts.Chaos.plane()
	r.gate = opts.gate(r.plane)
	setTreeGate(r.tree, r.gate)
	ob := opts.Observer
	switch opts.Checker {
	case CheckerVelodrome:
		r.velo = velodrome.New()
	case CheckerOptimized, CheckerBasic:
		alg := checker.AlgOptimized
		if opts.Checker == CheckerBasic {
			alg = checker.AlgBasic
		}
		r.q = dpst.NewQueryMode(r.tree, opts.queryMode())
		r.q.SetGate(r.gate)
		rep := checker.NewReporter(opts.ReporterLimit)
		rep.SetMaxViolations(opts.MaxViolations)
		r.chk = checker.New(checker.Options{
			Algorithm:           alg,
			Query:               r.q,
			Reporter:            rep,
			StrictLockChecks:     opts.StrictLockChecks,
			DisableAccessFilter:  opts.DisableAccessFilter,
			Batch:                opts.Batch && alg == checker.AlgOptimized,
			DisableWindowElision: opts.DisableWindowElision,
			Hub:                  r.hub,
			Gate:                 r.gate,
		})
		rep.SetObserver(func(v Violation) {
			r.hub.Note(obs.EventViolation, uint64(v.Loc))
			if ob != nil && ob.OnViolation != nil {
				ob.OnViolation(v)
			}
		})
		rep.SetDropObserver(func() {
			r.hub.Note(obs.EventDrop, 0)
			r.saturate(ob)
			if ob != nil && ob.OnDrop != nil {
				ob.OnDrop(DropEvent{Kind: "violation"})
			}
		})
	default:
		return nil, fmt.Errorf("avd: ReplayTrace requires an analyzing checker, got %v", opts.Checker)
	}
	if r.gate != nil {
		r.gate.SetDropObserver(func(site chaos.Site, n int64) {
			r.hub.Note(obs.EventDrop, uint64(site))
			r.saturate(ob)
			if ob != nil && ob.OnDrop != nil {
				ob.OnDrop(DropEvent{Kind: site.String(), Bytes: n})
			}
		})
	}
	return r, nil
}

// saturate latches replay saturation on the first drop of any kind and
// fires the observer's OnSaturation exactly once, mirroring
// Session.saturate.
func (r *Replayer) saturate(ob *Observer) {
	if r.hub.LatchSaturation(0) && ob != nil && ob.OnSaturation != nil {
		ob.OnSaturation()
	}
}

// Replay feeds tr through the analysis and returns its Report. It may
// be called once per Replayer; ctx cancellation and deadlines interrupt
// the replay with ErrCanceled/ErrDeadline while still returning the
// partial Report of the analyzed prefix.
func (r *Replayer) Replay(ctx context.Context, tr *Trace) (Report, error) {
	r.usedMu.Lock()
	if r.used {
		r.usedMu.Unlock()
		return Report{}, fmt.Errorf("avd: Replayer.Replay called twice (a Replayer analyzes one trace)")
	}
	r.used = true
	r.usedMu.Unlock()
	var err error
	if r.velo != nil {
		err = trace.ReplayContext(ctx, tr, r.tree, r.velo, r.velo)
	} else {
		err = trace.ReplayContext(ctx, tr, r.tree, r.chk, nil)
	}
	rep := r.report()
	return rep, err
}

// report assembles the current Report of the analysis (final after
// Replay returns, partial while it runs).
func (r *Replayer) report() Report {
	var rep Report
	fillStats(&rep, r.chk, r.velo, r.tree, r.q)
	if r.chk != nil {
		rep.Violations = r.chk.Reporter().Violations()
	}
	fillGateReport(&rep, r.gate)
	return rep
}

// Snapshot returns the live analysis view of the replay, with the same
// concurrency guarantees as Session.Snapshot: safe from any goroutine
// while Replay runs, counters monotone snapshot to snapshot.
func (r *Replayer) Snapshot() Snapshot {
	var rep Report
	fillStats(&rep, r.chk, r.velo, r.tree, r.q)
	fillGateReport(&rep, r.gate)
	ev := r.hub.Snapshot()
	if ev.Saturated {
		rep.Saturated = true
	}
	return Snapshot{
		Stats:          rep.Stats,
		ViolationCount: rep.ViolationCount,
		Cycles:         rep.Cycles,
		Saturated:      rep.Saturated,
		Drops:          rep.Drops,
		MemoryUsed:     rep.MemoryUsed,
		Chaos:          r.plane.Stats(),
		Events:         ev,
	}
}

// fillStats assembles the numeric analysis statistics shared by Report,
// ReplayTrace, and Snapshot. It deliberately omits the retained
// violation list (fetched separately by the end-of-run paths) so the
// live snapshot path does not copy per-violation detail. Every source
// it reads is safe for concurrent use with a running analysis.
func fillStats(r *Report, chk checker.Checker, velo *velodrome.Checker, tree dpst.Tree, q *dpst.Query) {
	if chk != nil {
		rep := chk.Reporter()
		r.ViolationCount = rep.Count()
		r.Drops.Violations = rep.Dropped()
		if rep.Saturated() {
			r.Saturated = true
		}
		cs := chk.Stats()
		r.Stats.Locations = cs.Locations
		r.Stats.FilterHits = cs.FilterHits
		r.Stats.FilterMisses = cs.FilterMisses
		r.Stats.BatchFlushes = cs.BatchFlushes
		r.Stats.BatchedAccesses = cs.BatchedAccesses
		r.Stats.WindowElisions = cs.WindowElisions
	}
	if velo != nil {
		r.Cycles = velo.Count()
		r.ViolationCount = velo.Count()
	}
	if tree != nil {
		r.Stats.DPSTNodes = tree.Len()
	}
	if q != nil {
		qs := q.Stats()
		r.Stats.LCAQueries = qs.LCAQueries
		r.Stats.UniqueLCAs = qs.UniqueLCAs
	}
}

// fillGateReport folds the gate's saturation state into a report.
func fillGateReport(r *Report, g *chaos.Gate) {
	if g == nil {
		return
	}
	r.Drops.Locations = g.Drops(chaos.SiteShadowLeaf) + g.Drops(chaos.SiteShadowChunk) + g.Drops(chaos.SiteShadowFar)
	r.Drops.Labels = g.Drops(chaos.SiteLabelArena)
	r.Drops.LCAEntries = g.Drops(chaos.SiteLCACache)
	r.MemoryUsed = g.Budget.Used()
	if g.Saturated() {
		r.Saturated = true
	}
}

// Run executes body as the root task and waits for the whole computation.
func (s *Session) Run(body func(*Task)) { s.sch.Run(body) }

// Close stops the worker pool.
func (s *Session) Close() { s.sch.Close() }

// NewMutex creates an instrumented mutex.
func (s *Session) NewMutex(name string) *Mutex { return s.sch.NewMutex(name) }

// Stats are the per-run measurements reported in Table 1 of the paper.
type Stats struct {
	// Locations is the number of unique instrumented locations accessed.
	Locations int64
	// DPSTNodes is the number of nodes in the DPST.
	DPSTNodes int
	// LCAQueries is the number of least-common-ancestor queries issued.
	LCAQueries int64
	// UniqueLCAs is the number of distinct LCA queries (cache misses).
	UniqueLCAs int64
	// FilterHits counts accesses skipped by the optimized checker's
	// redundant-access filter; FilterMisses counts accesses that fell
	// through to the full dispatch. Both are zero when the filter is
	// disabled (Options.DisableAccessFilter) or for other checkers.
	// Under Options.Batch the pair counts the batch deduplicator's skips
	// and full dispatches instead.
	FilterHits   int64
	FilterMisses int64
	// BatchFlushes counts drained per-task access batches and
	// BatchedAccesses the accesses dispatched through them; both are
	// zero unless Options.Batch is enabled.
	BatchFlushes    int64
	BatchedAccesses int64
	// WindowElisions counts accesses the handle layer answered from the
	// window-saturation cache without touching the batch buffer or dedup
	// table (DESIGN.md §4.3). Zero unless Options.Batch is enabled with
	// window elision on.
	WindowElisions int64
}

// UniquePercent is the percentage of LCA queries that were unique, or 0
// when none were issued (shown as -NA- in Table 1).
func (st Stats) UniquePercent() float64 {
	if st.LCAQueries == 0 {
		return 0
	}
	return 100 * float64(st.UniqueLCAs) / float64(st.LCAQueries)
}

// DropStats counts what a resource-bounded session shed instead of
// allocating: a nonzero field means the corresponding results may be
// incomplete in a documented way (see DESIGN.md, "Robustness and
// failure modes").
type DropStats struct {
	// Locations counts shadow-memory admissions refused: accesses to
	// those locations were ignored by the checker.
	Locations int64
	// Labels counts path-label allocations degraded to the sentinel;
	// affected nodes answer MHP queries by tree walk (slower, still
	// exact).
	Labels int64
	// LCAEntries counts memoized LCA results not cached; those queries
	// recompute (slower, still exact).
	LCAEntries int64
	// Violations counts violations refused by Options.MaxViolations.
	Violations int64
}

// Report is the outcome of a session's runs.
type Report struct {
	// Violations lists distinct atomicity violations (DPST checkers).
	Violations []Violation
	// ViolationCount counts distinct violations, including any beyond
	// the retention limit.
	ViolationCount int64
	// Cycles counts Velodrome serializability cycles (Velodrome only).
	Cycles int64
	// Stats carries the Table 1 measurements.
	Stats Stats
	// Saturated is set when any resource bound (MemoryBudget,
	// MaxViolations) or injected allocation failure caused the analysis
	// to shed metadata or results; Drops says what was shed.
	Saturated bool
	// Drops itemizes what was shed per layer.
	Drops DropStats
	// MemoryUsed is the tracked metadata bytes charged against
	// Options.MemoryBudget (0 when no budget is set).
	MemoryUsed int64
	// TaskPanics lists recovered task panics (bounded detail);
	// PanicCount is the total including any beyond the bound.
	TaskPanics []TaskPanic
	// PanicCount is the total number of recovered task panics.
	PanicCount int64
}

// Report returns the analysis results accumulated so far.
func (s *Session) Report() Report {
	var r Report
	fillStats(&r, s.chk, s.velo, s.tree, s.q)
	if s.chk != nil {
		r.Violations = s.chk.Reporter().Violations()
	}
	fillGateReport(&r, s.gate)
	r.TaskPanics, r.PanicCount = s.sch.TaskPanics()
	return r
}

// Snapshot is a point-in-time view of a running session's analysis,
// safe to poll from any goroutine while Run executes. All counters are
// monotone from snapshot to snapshot, and a snapshot taken after Run
// returns agrees with the corresponding fields of Report.
type Snapshot struct {
	// Stats carries the live Table 1 measurements.
	Stats Stats
	// ViolationCount counts distinct violations reported so far;
	// Cycles the Velodrome cycles (Velodrome sessions only).
	ViolationCount int64
	Cycles         int64
	// Saturated and Drops mirror the Report fields; MemoryUsed is the
	// current tracked metadata bytes.
	Saturated  bool
	Drops      DropStats
	MemoryUsed int64
	// PanicCount counts recovered task panics so far.
	PanicCount int64
	// Chaos counts injected faults so far.
	Chaos ChaosStats
	// Events are the raw observability event totals.
	Events EventCounts
}

// Snapshot returns the live analysis view. It takes no locks that the
// instrumented hot path contends on, so polling it (even at high
// frequency, from several goroutines) does not perturb the measured
// program.
func (s *Session) Snapshot() Snapshot {
	var r Report
	fillStats(&r, s.chk, s.velo, s.tree, s.q)
	fillGateReport(&r, s.gate)
	ev := s.hub.Snapshot()
	if ev.Saturated {
		r.Saturated = true
	}
	return Snapshot{
		Stats:          r.Stats,
		ViolationCount: r.ViolationCount,
		Cycles:         r.Cycles,
		Saturated:      r.Saturated,
		Drops:          r.Drops,
		MemoryUsed:     r.MemoryUsed,
		PanicCount:     ev.TaskPanics,
		Chaos:          s.plane.Stats(),
		Events:         ev,
	}
}
