// Command avd-serverd is the long-running trace-checking service: it
// ingests recorded execution traces over HTTP, checks each one on a
// sharded worker pool under per-run deadlines and memory budgets, and
// serves the results through a check-run lifecycle API (SUBMITTED →
// RUNNING → DONE/FAILED/CANCELED).
//
// Usage:
//
//	avd-serverd [-addr :8056] [-shards N] [-queue-depth N]
//	            [-max-body-bytes N] [-deadline D] [-max-deadline D]
//	            [-attempts N] [-backoff D] [-budget N] [-max-violations N]
//	            [-max-runs N] [-report-cache N] [-drain-timeout D]
//	            [-chaos-seed N] [-chaos-worker-crash P] [-chaos-admit-reject P]
//	            [-webhook-url URL] [-snapshot-interval D]
//
// Submit a trace and poll its lifecycle:
//
//	curl -s -XPOST --data-binary @trace.json localhost:8056/v1/checkruns
//	curl -s localhost:8056/v1/checkruns/1
//	curl -s localhost:8056/v1/checkruns/1/report
//
// Or watch it live: GET /v1/checkruns/1/events streams state
// transitions, findings, and periodic analysis snapshots over SSE
// (avd-top renders them as a dashboard), GET /metrics serves the
// Prometheus text exposition, and GET /debug/avd/spans the run
// lifecycles as a Perfetto timeline. With -webhook-url every ERROR
// finding is POSTed as JSON to the given endpoint (retried with
// jittered backoff; delivery counters are on /metrics).
//
// SIGINT/SIGTERM drain gracefully: admission stops with 503, in-flight
// runs get -drain-timeout to finish, stragglers are canceled, and the
// process exits with every run in a terminal state. /debug/avd carries
// live server gauges and per-run analysis snapshots; /debug/vars the
// standard expvar view of the same metrics.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/taskpar/avd/internal/chaos"
	"github.com/taskpar/avd/internal/server"
)

func main() {
	addr := flag.String("addr", ":8056", "listen address")
	shards := flag.Int("shards", 0, "worker shards (0 = min(GOMAXPROCS, 8))")
	queueDepth := flag.Int("queue-depth", 0, "pending runs per shard before 429 (0 = 64)")
	maxBody := flag.Int64("max-body-bytes", 0, "max upload size in bytes (0 = 32 MiB)")
	deadline := flag.Duration("deadline", 0, "default per-run deadline (0 = 30s)")
	maxDeadline := flag.Duration("max-deadline", 0, "cap on client-requested deadlines (0 = 5m)")
	attempts := flag.Int("attempts", 0, "max executions of a run under transient failures (0 = 3)")
	backoff := flag.Duration("backoff", 0, "base retry backoff (0 = 25ms)")
	budget := flag.Int64("budget", 0, "per-run analysis memory budget in bytes (0 = unlimited)")
	maxViolations := flag.Int64("max-violations", 0, "per-run violation cap (0 = uncapped)")
	maxRuns := flag.Int("max-runs", 0, "retained-run registry bound (0 = 4096)")
	reportCache := flag.Int("report-cache", 0, "cross-run report cache entries (0 = 256, negative disables)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain deadline on SIGTERM")
	chaosSeed := flag.Int64("chaos-seed", 1, "chaos decision-stream seed")
	chaosCrash := flag.Float64("chaos-worker-crash", 0, "probability a run attempt's worker crashes (testing)")
	chaosReject := flag.Float64("chaos-admit-reject", 0, "probability an admission is rejected as overflow (testing)")
	webhookURL := flag.String("webhook-url", "", "POST a JSON notification here for every ERROR finding (empty disables)")
	snapshotInterval := flag.Duration("snapshot-interval", 0, "live-analysis frame period on run event streams (0 = 250ms)")
	flag.Parse()

	if err := server.ValidateWebhookURL(*webhookURL); err != nil {
		log.Fatalf("avd-serverd: %v", err)
	}

	svc := server.New(server.Config{
		Shards:           *shards,
		QueueDepth:       *queueDepth,
		MaxBodyBytes:     *maxBody,
		DefaultDeadline:  *deadline,
		MaxDeadline:      *maxDeadline,
		MaxAttempts:      *attempts,
		RetryBackoff:     *backoff,
		MemoryBudget:     *budget,
		MaxViolations:    *maxViolations,
		MaxRuns:          *maxRuns,
		ReportCacheSize:  *reportCache,
		WebhookURL:       *webhookURL,
		SnapshotInterval: *snapshotInterval,
		Chaos: chaos.Config{
			Seed:            *chaosSeed,
			WorkerCrashProb: *chaosCrash,
			AdmitRejectProb: *chaosReject,
		},
	})
	expvar.Publish("avd-serverd", expvar.Func(func() any { return svc.Metrics() }))

	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())
	srv := &http.Server{
		Addr:    *addr,
		Handler: mux,
		// Header reads are bounded independently of uploads, so a client
		// that never finishes its request line cannot pin a connection.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("avd-serverd: listening on %s", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("avd-serverd: %v", err)
	case sig := <-sigc:
		log.Printf("avd-serverd: %v: draining (deadline %v)", sig, *drainTimeout)
	}

	// Drain the run pipeline first — clients can still poll statuses —
	// then stop the HTTP listener.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		log.Printf("avd-serverd: drain deadline passed, stragglers canceled (%v)", err)
	}
	hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	if err := srv.Shutdown(hctx); err != nil {
		log.Printf("avd-serverd: http shutdown: %v", err)
	}
	m := svc.Metrics()
	fmt.Printf("avd-serverd: drained: %d done, %d failed, %d canceled (%d admitted)\n",
		m.Done, m.Failed, m.Canceled, m.Admitted)
}
