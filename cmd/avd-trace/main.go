// Command avd-trace is the paper's trace generator and offline checker:
// it generates random structured task parallel programs, schedules them
// into valid interleavings, replays traces through the detectors, and
// cross-checks the one-trace detection result against the all-schedules
// oracle.
//
// Usage:
//
//	avd-trace -gen [-steps N] [-locations N] [-locks N] [-seed N] [-o file]
//	avd-trace -check [-algorithm optimized|basic|velodrome] [-i file] [-max-trace-bytes N]
//	avd-trace -selfcheck [-trials N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"github.com/taskpar/avd/internal/checker"
	"github.com/taskpar/avd/internal/dpst"
	"github.com/taskpar/avd/internal/oracle"
	"github.com/taskpar/avd/internal/sptest"
	"github.com/taskpar/avd/internal/trace"
	"github.com/taskpar/avd/internal/velodrome"
)

func main() {
	gen := flag.Bool("gen", false, "generate a random trace to -o")
	check := flag.Bool("check", false, "replay the trace from -i through a checker")
	selfcheck := flag.Bool("selfcheck", false, "generate programs and compare one-trace detection with the all-schedules oracle")
	steps := flag.Int("steps", 12, "generation: maximum steps")
	locations := flag.Int("locations", 3, "generation: shared locations")
	locks := flag.Int("locks", 1, "generation: number of locks")
	lockProb := flag.Float64("lockprob", 0.3, "generation: probability an access run is locked")
	seed := flag.Int64("seed", 1, "random seed")
	trials := flag.Int("trials", 200, "selfcheck: number of programs")
	algorithm := flag.String("algorithm", "optimized", "check: optimized, basic, or velodrome")
	strict := flag.Bool("strict", false, "enable the strict-lock extension (and compare against the full oracle in -selfcheck)")
	in := flag.String("i", "-", "input trace file (- = stdin)")
	out := flag.String("o", "-", "output trace file (- = stdout)")
	maxBytes := flag.Int64("max-trace-bytes", 256<<20, "refuse input traces larger than this many encoded bytes (0 = unlimited)")
	flag.Parse()

	var err error
	switch {
	case *gen:
		err = runGen(*steps, *locations, *locks, *lockProb, *seed, *out)
	case *check:
		err = runCheck(*algorithm, *in, *strict, *maxBytes)
	case *selfcheck:
		err = runSelfcheck(*trials, *steps, *locations, *locks, *lockProb, *seed, *strict)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "avd-trace: %v\n", err)
		os.Exit(1)
	}
}

func genConfig(steps, locations, locks int, lockProb float64) sptest.GenConfig {
	return sptest.GenConfig{
		MaxItems: 4, MaxDepth: 3, MaxSteps: steps,
		Locations: locations, MaxAccess: 4,
		Locks: locks, LockProb: lockProb,
	}
}

func runGen(steps, locations, locks int, lockProb float64, seed int64, out string) error {
	r := rand.New(rand.NewSource(seed))
	p := sptest.Random(r, genConfig(steps, locations, locks, lockProb))
	tr, err := trace.FromProgram(p, r)
	if err != nil {
		return err
	}
	w := io.Writer(os.Stdout)
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintf(os.Stderr, "generated program:\n%s", p)
	return tr.Encode(w)
}

func runCheck(algorithm, in string, strict bool, maxBytes int64) error {
	r := io.Reader(os.Stdin)
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	// The input is untrusted: the size cap rejects oversized files
	// before the decoder allocates for their claimed contents, and
	// truncated files fail with a clean diagnostic instead of a panic.
	tr, err := trace.DecodeLimited(r, maxBytes)
	if err != nil {
		return err
	}
	tree := dpst.NewArrayTree()
	switch algorithm {
	case "velodrome":
		v := velodrome.New()
		if err := trace.Replay(tr, tree, v, v); err != nil {
			return err
		}
		for _, c := range v.Cycles() {
			fmt.Println(c)
		}
		fmt.Printf("%d cycles in %d events (%d tasks, %d DPST nodes)\n",
			v.Count(), len(tr.Events), tr.Tasks, tree.Len())
	case "optimized", "basic":
		alg := checker.AlgOptimized
		if algorithm == "basic" {
			alg = checker.AlgBasic
		}
		q := dpst.NewQuery(tree, true)
		c := checker.New(checker.Options{Algorithm: alg, Query: q, StrictLockChecks: strict})
		if err := trace.Replay(tr, tree, c, nil); err != nil {
			return err
		}
		for _, v := range c.Reporter().Violations() {
			fmt.Println(v)
		}
		st := q.Stats()
		fmt.Printf("%d violations in %d events (%d tasks, %d DPST nodes, %d LCA queries)\n",
			c.Reporter().Count(), len(tr.Events), tr.Tasks, st.Nodes, st.LCAQueries)
	default:
		return fmt.Errorf("unknown algorithm %q", algorithm)
	}
	return nil
}

func runSelfcheck(trials, steps, locations, locks int, lockProb float64, seed int64, strict bool) error {
	r := rand.New(rand.NewSource(seed))
	mismatches := 0
	detected := 0
	mode := oracle.ModePaper
	if strict {
		mode = oracle.ModeFull
	}
	for i := 0; i < trials; i++ {
		p := sptest.Random(r, genConfig(steps, locations, locks, lockProb))
		b := sptest.Build(dpst.ArrayLayout, p)
		want := oracle.Violations(b, mode)
		tr, err := trace.FromProgram(p, r)
		if err != nil {
			return err
		}
		tree := dpst.NewArrayTree()
		c := checker.New(checker.Options{Query: dpst.NewQuery(tree, true), StrictLockChecks: strict})
		if err := trace.Replay(tr, tree, c, nil); err != nil {
			return err
		}
		got := map[int]bool{}
		for _, v := range c.Reporter().Violations() {
			got[int(v.Loc-trace.LocBase)] = true
		}
		same := len(got) == len(want)
		for l := range got {
			if !want[l] {
				same = false
			}
		}
		if !same {
			mismatches++
			fmt.Printf("MISMATCH (trial %d): checker=%v oracle=%v\nprogram:\n%s\n", i, got, want, p)
		}
		if len(want) > 0 {
			detected++
		}
	}
	fmt.Printf("selfcheck: %d trials, %d with feasible violations, %d mismatches vs oracle\n",
		trials, detected, mismatches)
	if mismatches > 0 {
		return fmt.Errorf("%d mismatches", mismatches)
	}
	return nil
}
