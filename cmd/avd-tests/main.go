// Command avd-tests runs the 36-program atomicity-violation detection
// suite (Section 4 of the paper) and prints the detection matrix: every
// positive program must be detected and every negative program must stay
// silent, in both paper mode and the strict-lock extension.
//
// Usage:
//
//	avd-tests [-workers N] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	avd "github.com/taskpar/avd"
	"github.com/taskpar/avd/internal/suite"
)

func main() {
	workers := flag.Int("workers", 0, "worker threads (0 = GOMAXPROCS)")
	verbose := flag.Bool("v", false, "print every reported violation")
	flag.Parse()

	programs := suite.Programs()
	fmt.Printf("Detection suite: %d programs\n", len(programs))
	fmt.Printf("%-32s %-10s %-10s %-10s %-8s\n", "Program", "expect", "paper", "strict", "result")
	failures := 0
	for _, p := range programs {
		rep := p.Execute(avd.Options{Workers: *workers})
		repStrict := p.Execute(avd.Options{Workers: *workers, StrictLockChecks: true})
		got := rep.ViolationCount > 0
		gotStrict := repStrict.ViolationCount > 0
		status := "ok"
		if got != p.Want || gotStrict != p.WantStrict {
			status = "FAIL"
			failures++
		}
		fmt.Printf("%-32s %-10s %-10s %-10s %-8s\n",
			p.Name, detWord(p.Want), detWord(got), detWord(gotStrict), status)
		if *verbose {
			for _, v := range rep.Violations {
				fmt.Printf("    %s\n", v)
			}
		}
	}
	if failures > 0 {
		fmt.Printf("%d FAILURES\n", failures)
		os.Exit(1)
	}
	fmt.Println("all programs behaved as expected: every violation detected, no false positives")
}

func detWord(b bool) string {
	if b {
		return "violation"
	}
	return "clean"
}
