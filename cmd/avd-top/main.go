// Command avd-top is a terminal dashboard for the avd-serverd
// observability plane: a live runs table, per-shard queue bars,
// counter sparklines, and a tail of findings streamed over SSE,
// redrawn in place lazydocker-style with plain ANSI escapes.
//
// Usage:
//
//	avd-top [-addr http://localhost:8056] [-interval 1s] [-width N]
//	avd-top -once                      # render one frame and exit (CI-safe)
//	avd-top -demo [-kernel streamcluster] [-n N]
//	avd-top -reduce URL                # reduce an SSE stream to the report
//	avd-top -check-metrics URL         # validate a /metrics exposition
//
// The default mode polls GET /debug/avd for the panels and subscribes
// to GET /v1/checkruns/{id}/events for every non-terminal run it sees,
// feeding the findings tail. -demo needs no server: it runs a bench
// kernel in-process under the checker and renders the live analysis
// snapshot instead.
//
// The last two modes are plumbing for scripts and CI rather than
// dashboards: -reduce consumes a run's SSE stream to completion and
// prints the reduced findings report (byte-identical to GET
// /v1/checkruns/{id}/report), and -check-metrics fetches a Prometheus
// endpoint, round-trips it through the text-exposition parser, and
// fails unless the required avd metric families are present.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/taskpar/avd/internal/bench"
	"github.com/taskpar/avd/internal/harness"
	"github.com/taskpar/avd/internal/obs"
	"github.com/taskpar/avd/internal/server"
	"github.com/taskpar/avd/internal/top"
)

func main() {
	addr := flag.String("addr", "http://localhost:8056", "avd-serverd base URL")
	interval := flag.Duration("interval", time.Second, "poll and redraw interval")
	width := flag.Int("width", 0, "render width (default $COLUMNS, else 100)")
	once := flag.Bool("once", false, "render a single frame and exit (no screen clearing)")
	frames := flag.Int("frames", 0, "stop after N redraws (0 = until interrupted)")
	noColor := flag.Bool("no-color", false, "disable ANSI colors")
	demo := flag.Bool("demo", false, "run a bench kernel in-process and watch its live analysis (no server)")
	kernel := flag.String("kernel", "streamcluster", "demo kernel name")
	size := flag.Int("n", 0, "demo problem size (default: the kernel's)")
	reduce := flag.String("reduce", "", "consume the SSE stream at URL to completion and print the reduced report")
	checkMetrics := flag.String("check-metrics", "", "fetch the Prometheus endpoint at URL, validate it, and verify the avd families")
	flag.Parse()

	switch {
	case *reduce != "":
		if err := reduceStream(*reduce); err != nil {
			fatal(err)
		}
	case *checkMetrics != "":
		if err := verifyMetrics(*checkMetrics, os.Stdout); err != nil {
			fatal(err)
		}
	case *demo:
		if err := runDemo(*kernel, *size, *interval, termWidth(*width), *frames, *noColor); err != nil {
			fatal(err)
		}
	default:
		if err := watch(*addr, *interval, termWidth(*width), *once, *frames, *noColor); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "avd-top:", err)
	os.Exit(1)
}

func termWidth(flagW int) int {
	if flagW > 0 {
		return flagW
	}
	if c, err := strconv.Atoi(os.Getenv("COLUMNS")); err == nil && c >= 40 {
		return c
	}
	return 100
}

// reduceStream consumes one run's SSE stream to completion and prints
// the reduced findings report. CI diffs this against GET /report to
// enforce the stream-equivalence contract.
func reduceStream(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	out, err := server.ReduceStream(resp.Body)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(out)
	return err
}

// requiredFamilies are the metric families every avd-serverd /metrics
// exposition must carry; -check-metrics fails if any is missing.
var requiredFamilies = []string{
	"avd_server_admitted_total",
	"avd_server_rejected_total",
	"avd_server_runs_total",
	"avd_server_in_flight",
	"avd_server_queued",
	"avd_server_report_cache_hits_total",
	"avd_stream_subscribers",
	"avd_stream_dropped_frames_total",
	"avd_analysis_violations_total",
	"avd_analysis_locations_total",
	"avd_run_queue_wait_seconds",
	"avd_run_duration_seconds",
}

// verifyMetrics fetches a Prometheus text exposition, round-trips it
// through the validating parser, and checks the required families.
func verifyMetrics(url string, w io.Writer) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	pm, err := obs.ParseProm(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return fmt.Errorf("invalid exposition: %w", err)
	}
	var missing []string
	for _, name := range requiredFamilies {
		if _, ok := pm.Types[name]; !ok {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("missing metric families: %s", strings.Join(missing, ", "))
	}
	fmt.Fprintf(w, "metrics ok: %d families, %d samples\n", len(pm.Types), len(pm.Samples))
	return nil
}

// watch is the live dashboard loop against a server.
func watch(base string, interval time.Duration, width int, once bool, frames int, noColor bool) error {
	base = strings.TrimRight(base, "/")
	dash := top.NewDash(64)
	dash.NoColor = noColor || once
	t := &tailer{base: base, dash: dash, seen: make(map[int64]bool)}

	poll := func() error {
		doc, err := fetchDebug(base)
		if err != nil {
			return err
		}
		dash.Observe(top.Frame{Time: time.Now(), Source: base, Metrics: doc.Metrics, Runs: doc.Runs})
		if !once {
			for _, r := range doc.Runs {
				t.ensure(r.ID, r.Status)
			}
		}
		return nil
	}

	if once {
		if err := poll(); err != nil {
			return err
		}
		_, err := os.Stdout.WriteString(dash.Render(width))
		return err
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	drawn := 0
	for {
		if err := poll(); err != nil {
			dash.AddFinding("poll error: " + err.Error())
		}
		os.Stdout.WriteString(top.Clear + dash.Render(width))
		drawn++
		if frames > 0 && drawn >= frames {
			return nil
		}
		select {
		case <-sig:
			return nil
		case <-time.After(interval):
		}
	}
}

func fetchDebug(base string) (*top.DebugDoc, error) {
	resp, err := http.Get(base + "/debug/avd")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /debug/avd: %s", resp.Status)
	}
	var doc top.DebugDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// tailer follows the SSE stream of every non-terminal run once,
// feeding finding titles into the dashboard tail.
type tailer struct {
	base string
	dash *top.Dash
	mu   sync.Mutex
	seen map[int64]bool
}

func (t *tailer) ensure(id int64, status server.Status) {
	switch status {
	case server.StatusDone, server.StatusFailed, server.StatusCanceled:
		return
	}
	t.mu.Lock()
	already := t.seen[id]
	t.seen[id] = true
	t.mu.Unlock()
	if already {
		return
	}
	go t.follow(id)
}

func (t *tailer) follow(id int64) {
	resp, err := http.Get(fmt.Sprintf("%s/v1/checkruns/%d/events", t.base, id))
	if err != nil {
		t.dash.AddFinding(fmt.Sprintf("run %d: stream error: %v", id, err))
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.dash.AddFinding(fmt.Sprintf("run %d: stream: %s", id, resp.Status))
		return
	}
	_ = server.DecodeSSE(resp.Body, func(event string, data []byte) error {
		switch event {
		case server.EventFinding:
			var ev server.StreamEvent
			if err := json.Unmarshal(data, &ev); err != nil || ev.Finding == nil {
				return nil
			}
			t.dash.AddFinding(fmt.Sprintf("run %d [%s] %s", id, ev.Finding.Status, ev.Finding.Title))
		case server.EventReset:
			t.dash.AddFinding(fmt.Sprintf("run %d: attempt crashed, findings discarded", id))
		}
		return nil
	})
}

// runDemo measures a bench kernel in-process under the checker and
// renders its live analysis snapshot — the dashboard without a server.
func runDemo(name string, n int, interval time.Duration, width, frames int, noColor bool) error {
	k, err := bench.ByName(name)
	if err != nil {
		return err
	}
	if n <= 0 {
		n = k.DefaultN
	}
	dash := top.NewDash(64)
	dash.NoColor = noColor

	done := make(chan error, 1)
	go func() {
		_, err := harness.Measure(k, harness.PrototypeBatch(0), n, 1)
		done <- err
	}()

	src := fmt.Sprintf("demo %s n=%d", name, n)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	drawn := 0
	for {
		if s := harness.LiveSession(); s != nil {
			dash.Observe(top.FrameFromSnapshot(s.Snapshot(), src, time.Now()))
		}
		os.Stdout.WriteString(top.Clear + dash.Render(width))
		drawn++
		if frames > 0 && drawn >= frames {
			return nil
		}
		select {
		case err := <-done:
			if err != nil {
				return err
			}
			os.Stdout.WriteString(top.Clear + dash.Render(width))
			fmt.Println("demo run complete")
			return nil
		case <-sig:
			return nil
		case <-time.After(interval):
		}
	}
}
