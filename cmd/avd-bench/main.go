// Command avd-bench regenerates the performance figures of the paper:
// Figure 13 (checker slowdown vs the reimplemented Velodrome, both
// relative to an uninstrumented baseline) and Figure 14 (array-based vs
// linked DPST layouts).
//
// Usage:
//
//	avd-bench [-figure 13|14|all] [-workers N] [-scale F] [-reps N] [-json PATH]
//
// As in the paper, each benchmark is executed repeatedly and the average
// is reported; absolute times depend on this machine, but the shape —
// who wins and by roughly what factor — should match the paper. With
// -json the selected figure's raw measurements (wall times, slowdowns,
// geomeans) are additionally written to PATH as indented JSON; when
// -figure all, the JSON carries Figure 13.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/taskpar/avd/internal/harness"
)

func main() {
	figure := flag.String("figure", "all", "which figure to regenerate: 13, 14, or all")
	ablation := flag.String("ablation", "", "extra ablation to run instead of the figures: metadata")
	seed := flag.Int64("seed", 1, "seed for ablation workloads")
	workers := flag.Int("workers", 0, "worker threads (0 = GOMAXPROCS)")
	scale := flag.Float64("scale", 1, "problem-size multiplier")
	reps := flag.Int("reps", 3, "repetitions per measurement (the paper uses 5)")
	jsonPath := flag.String("json", "", "also write the figure's measurements to this file as JSON")
	flag.Parse()

	if *ablation != "" {
		switch *ablation {
		case "metadata":
			if err := harness.MetadataAblation(os.Stdout, *seed); err != nil {
				log.Fatal(err)
			}
		default:
			log.Fatalf("unknown -ablation %q (want metadata)", *ablation)
		}
		return
	}

	// render measures one figure, prints it, and remembers its data for
	// the optional JSON dump.
	var jsonData *harness.FigureData
	render := func(title string, data func(int, float64, int) (*harness.FigureData, error), keep bool) {
		d, err := data(*workers, *scale, *reps)
		if err != nil {
			log.Fatal(err)
		}
		harness.RenderFigure(os.Stdout, title, d)
		if keep {
			jsonData = d
		}
	}

	switch *figure {
	case "13":
		render(harness.Figure13Title, harness.Figure13Data, true)
	case "14":
		render(harness.Figure14Title, harness.Figure14Data, true)
	case "all":
		render(harness.Figure13Title, harness.Figure13Data, true)
		fmt.Println()
		render(harness.Figure14Title, harness.Figure14Data, false)
	default:
		log.Fatalf("unknown -figure %q (want 13, 14, or all)", *figure)
	}

	if *jsonPath != "" && jsonData != nil {
		if err := jsonData.WriteJSON(*jsonPath); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *jsonPath)
	}
}
