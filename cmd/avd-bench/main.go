// Command avd-bench regenerates the performance figures of the paper:
// Figure 13 (checker slowdown vs the reimplemented Velodrome, both
// relative to an uninstrumented baseline) and Figure 14 (array-based vs
// linked DPST layouts).
//
// Usage:
//
//	avd-bench [-figure 13|14|all] [-kernels k1,k2] [-workers N] [-scale F]
//	          [-reps N] [-json PATH] [-cpuprofile PATH] [-memprofile PATH]
//	          [-require-filter-hits] [-require-window-elisions]
//	          [-require-batch-le-filter k1,k2]
//
// As in the paper, each benchmark is executed repeatedly and the average
// is reported; absolute times depend on this machine, but the shape —
// who wins and by roughly what factor — should match the paper. With
// -json the selected figure's raw measurements (wall times, slowdowns,
// geomeans, filter hit/miss counters) are additionally written to PATH
// as indented JSON; when -figure all, the JSON carries Figure 13.
//
// -kernels restricts the sweep to the named kernels, so a CI gate can
// afford more scale and reps on the kernels it cares about than a full
// figure run would.
//
// -cpuprofile and -memprofile write pprof profiles of the measurement
// run. -require-filter-hits exits nonzero when the avd-filter
// configuration reports zero redundant-access filter hits, or when the
// avd-batch configuration (Figure 13) reports zero batch flushes,
// batched accesses, or front-end saves (dedup hits plus window
// elisions; the handle-layer front end answers most saturated repeats
// before the dedup table sees them, so the two counters are one
// engagement signal) — the CI guard against the filter or the
// coalescer silently wedging open. -require-window-elisions is the
// same guard for the coalescer's handle-layer front end alone: it
// exits nonzero when the avd-batch configuration reports zero window
// elisions. -require-batch-le-filter takes a comma-separated list of
// kernel[:slack] entries and exits nonzero when avd-batch's slowdown
// exceeds avd-filter's (times the optional slack factor) on any of
// them — the regression gate for the kernels batching exists to win
// on. The slack form exists for kernels whose batched path carries a
// known, bounded structural cost (see DESIGN.md §4.3 on why short
// repeat runs cannot be elided): "sort:1.3" fails only when sort's
// batched slowdown exceeds 1.3x its filtered slowdown.
//
// -debug-addr serves expvar on the given address while the benchmarks
// run: GET /debug/vars carries an "avd" variable with a live Snapshot
// of the session currently being measured (violation counts, Table 1
// stats, memory-budget usage, chaos counters), or null between runs.
// Scheduler worker goroutines carry pprof labels (avd_worker), so CPU
// profiles taken from the endpoint attribute samples per worker.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"github.com/taskpar/avd/internal/harness"
)

func main() {
	figure := flag.String("figure", "all", "which figure to regenerate: 13, 14, or all")
	kernelsFlag := flag.String("kernels", "", "comma-separated kernel subset to measure (default: all)")
	ablation := flag.String("ablation", "", "extra ablation to run instead of the figures: metadata")
	seed := flag.Int64("seed", 1, "seed for ablation workloads")
	workers := flag.Int("workers", 0, "worker threads (0 = GOMAXPROCS)")
	scale := flag.Float64("scale", 1, "problem-size multiplier")
	reps := flag.Int("reps", 3, "repetitions per measurement (the paper uses 5)")
	jsonPath := flag.String("json", "", "also write the figure's measurements to this file as JSON")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	requireHits := flag.Bool("require-filter-hits", false, "fail when the avd-filter configuration reports zero filter hits")
	requireElisions := flag.Bool("require-window-elisions", false, "fail when the avd-batch configuration reports zero window elisions")
	batchLEFilter := flag.String("require-batch-le-filter", "", "comma-separated kernels on which avd-batch's slowdown must not exceed avd-filter's")
	debugAddr := flag.String("debug-addr", "", "serve expvar (incl. a live session snapshot) on this address, e.g. localhost:6060")
	flag.Parse()

	if *debugAddr != "" {
		expvar.Publish("avd", expvar.Func(func() any {
			s := harness.LiveSession()
			if s == nil {
				return nil
			}
			return s.Snapshot()
		}))
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("avd-bench: debug endpoint: %v", err)
			}
		}()
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *ablation != "" {
		switch *ablation {
		case "metadata":
			if err := harness.MetadataAblation(os.Stdout, *seed); err != nil {
				log.Fatal(err)
			}
		default:
			log.Fatalf("unknown -ablation %q (want metadata)", *ablation)
		}
		writeMemProfile(*memProfile)
		return
	}

	var kernels []string
	for _, name := range strings.Split(*kernelsFlag, ",") {
		if name = strings.TrimSpace(name); name != "" {
			kernels = append(kernels, name)
		}
	}

	// render measures one figure, prints it, and remembers its data for
	// the optional JSON dump and the filter-hit guard.
	var jsonData *harness.FigureData
	render := func(title string, data func(int, float64, int, ...string) (*harness.FigureData, error), keep bool) {
		d, err := data(*workers, *scale, *reps, kernels...)
		if err != nil {
			log.Fatal(err)
		}
		harness.RenderFigure(os.Stdout, title, d)
		if keep {
			jsonData = d
		}
	}

	switch *figure {
	case "13":
		render(harness.Figure13Title, harness.Figure13Data, true)
	case "14":
		render(harness.Figure14Title, harness.Figure14Data, true)
	case "all":
		render(harness.Figure13Title, harness.Figure13Data, true)
		fmt.Println()
		render(harness.Figure14Title, harness.Figure14Data, false)
	default:
		log.Fatalf("unknown -figure %q (want 13, 14, or all)", *figure)
	}

	if *jsonPath != "" && jsonData != nil {
		if err := jsonData.WriteJSON(*jsonPath); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *jsonPath)
	}

	if *requireHits {
		var hits, misses int64
		var batchSaves, batchFlushes, batchedAccesses int64
		for _, r := range jsonData.Results {
			switch r.Config {
			case "avd-filter":
				hits += r.FilterHits
				misses += r.FilterMisses
			case "avd-batch":
				batchSaves += r.FilterHits + r.WindowElisions
				batchFlushes += r.BatchFlushes
				batchedAccesses += r.BatchedAccesses
			}
		}
		fmt.Printf("\navd-filter: %d filter hits, %d misses\n", hits, misses)
		if hits == 0 {
			log.Fatal("avd-bench: -require-filter-hits: the avd-filter configuration reported zero filter hits")
		}
		if batchFlushes > 0 || batchedAccesses > 0 || batchSaves > 0 {
			fmt.Printf("avd-batch: %d front-end saves (dedup hits + elisions), %d flushes, %d batched accesses\n",
				batchSaves, batchFlushes, batchedAccesses)
			if batchFlushes == 0 || batchedAccesses == 0 {
				log.Fatal("avd-bench: -require-filter-hits: the avd-batch configuration never flushed a batch")
			}
			if batchSaves == 0 {
				log.Fatal("avd-bench: -require-filter-hits: the avd-batch front end reported neither dedup hits nor window elisions")
			}
		} else if figureHasConfig(jsonData, "avd-batch") {
			log.Fatal("avd-bench: -require-filter-hits: the avd-batch configuration recorded no batching activity")
		}
	}

	if *requireElisions {
		var elisions int64
		for _, r := range jsonData.Results {
			if r.Config == "avd-batch" {
				elisions += r.WindowElisions
			}
		}
		fmt.Printf("avd-batch: %d window elisions\n", elisions)
		if !figureHasConfig(jsonData, "avd-batch") {
			log.Fatal("avd-bench: -require-window-elisions: the measured figure has no avd-batch configuration")
		}
		if elisions == 0 {
			log.Fatal("avd-bench: -require-window-elisions: the avd-batch configuration reported zero window elisions")
		}
	}

	if *batchLEFilter != "" {
		slowdown := make(map[string]map[string]float64) // kernel -> config -> slowdown
		for _, r := range jsonData.Results {
			if slowdown[r.Kernel] == nil {
				slowdown[r.Kernel] = make(map[string]float64)
			}
			slowdown[r.Kernel][r.Config] = r.Slowdown
		}
		for _, spec := range strings.Split(*batchLEFilter, ",") {
			spec = strings.TrimSpace(spec)
			if spec == "" {
				continue
			}
			// kernel[:slack] — slack is a multiplier on the filter
			// slowdown, for kernels whose batched path has a known,
			// bounded structural cost (default 1 = strict at-or-below).
			kernel, slack := spec, 1.0
			if k, s, ok := strings.Cut(spec, ":"); ok {
				v, err := strconv.ParseFloat(s, 64)
				if err != nil || v < 1 {
					log.Fatalf("avd-bench: -require-batch-le-filter: bad slack in %q (want kernel:factor with factor >= 1)", spec)
				}
				kernel, slack = k, v
			}
			cfgs, ok := slowdown[kernel]
			if !ok {
				log.Fatalf("avd-bench: -require-batch-le-filter: kernel %q was not measured", kernel)
			}
			batch, okB := cfgs["avd-batch"]
			filter, okF := cfgs["avd-filter"]
			if !okB || !okF {
				log.Fatalf("avd-bench: -require-batch-le-filter: kernel %q is missing the avd-batch or avd-filter configuration", kernel)
			}
			fmt.Printf("%s: avd-batch %.2fx vs avd-filter %.2fx (slack %.2f)\n", kernel, batch, filter, slack)
			if batch > filter*slack {
				log.Fatalf("avd-bench: -require-batch-le-filter: %s regressed: avd-batch %.2fx > avd-filter %.2fx x %.2f",
					kernel, batch, filter, slack)
			}
		}
	}

	writeMemProfile(*memProfile)
}

// figureHasConfig reports whether the measured figure included the
// named configuration (Figure 14 has no avd-batch column, so the batch
// guard must not fire on it).
func figureHasConfig(d *harness.FigureData, name string) bool {
	for _, c := range d.Configs {
		if c == name {
			return true
		}
	}
	return false
}

// writeMemProfile dumps a heap profile after a final GC so the profile
// reflects retained metadata rather than transient garbage.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		log.Fatal(err)
	}
}
