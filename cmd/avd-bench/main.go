// Command avd-bench regenerates the performance figures of the paper:
// Figure 13 (checker slowdown vs the reimplemented Velodrome, both
// relative to an uninstrumented baseline) and Figure 14 (array-based vs
// linked DPST layouts).
//
// Usage:
//
//	avd-bench [-figure 13|14|all] [-workers N] [-scale F] [-reps N]
//
// As in the paper, each benchmark is executed repeatedly and the average
// is reported; absolute times depend on this machine, but the shape —
// who wins and by roughly what factor — should match the paper.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/taskpar/avd/internal/harness"
)

func main() {
	figure := flag.String("figure", "all", "which figure to regenerate: 13, 14, or all")
	ablation := flag.String("ablation", "", "extra ablation to run instead of the figures: metadata")
	seed := flag.Int64("seed", 1, "seed for ablation workloads")
	workers := flag.Int("workers", 0, "worker threads (0 = GOMAXPROCS)")
	scale := flag.Float64("scale", 1, "problem-size multiplier")
	reps := flag.Int("reps", 3, "repetitions per measurement (the paper uses 5)")
	flag.Parse()

	if *ablation != "" {
		switch *ablation {
		case "metadata":
			if err := harness.MetadataAblation(os.Stdout, *seed); err != nil {
				log.Fatal(err)
			}
		default:
			log.Fatalf("unknown -ablation %q (want metadata)", *ablation)
		}
		return
	}

	switch *figure {
	case "13":
		if err := harness.Figure13(os.Stdout, *workers, *scale, *reps); err != nil {
			log.Fatal(err)
		}
	case "14":
		if err := harness.Figure14(os.Stdout, *workers, *scale, *reps); err != nil {
			log.Fatal(err)
		}
	case "all":
		if err := harness.Figure13(os.Stdout, *workers, *scale, *reps); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		if err := harness.Figure14(os.Stdout, *workers, *scale, *reps); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -figure %q (want 13, 14, or all)", *figure)
	}
}
