// Command avd-stats regenerates Table 1 of the paper: per-benchmark
// unique locations, DPST node counts, LCA query counts, and the unique
// LCA percentage, measured under the atomicity checker.
//
// Usage:
//
//	avd-stats [-workers N] [-scale F] [-reps N] [-json]
//
// With -json the full machine-readable Table1Data is written to stdout
// instead of the text table, including each kernel's detected
// violations with provenance: DPST paths, locksets, the unserializable
// pattern name, observed-vs-inferred classification, and a rendered
// explanation.
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"

	"github.com/taskpar/avd/internal/harness"
)

func main() {
	workers := flag.Int("workers", 0, "worker threads (0 = GOMAXPROCS)")
	scale := flag.Float64("scale", 1, "problem-size multiplier")
	reps := flag.Int("reps", 1, "repetitions per benchmark")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON with violation provenance")
	flag.Parse()
	if !*asJSON {
		if err := harness.Table1(os.Stdout, *workers, *scale, *reps); err != nil {
			log.Fatal(err)
		}
		return
	}
	d, err := harness.CollectTable1(*workers, *scale, *reps)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		log.Fatal(err)
	}
}
