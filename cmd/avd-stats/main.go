// Command avd-stats regenerates Table 1 of the paper: per-benchmark
// unique locations, DPST node counts, LCA query counts, and the unique
// LCA percentage, measured under the atomicity checker.
//
// Usage:
//
//	avd-stats [-workers N] [-scale F] [-reps N] [-batch] [-json]
//
// -batch measures with the step-granular access coalescer in front of
// the checker; the characteristic columns are identical by construction
// (batching is output-invisible) and the JSON rows additionally carry
// batch_flushes and batched_accesses.
//
// With -json the full machine-readable Table1Data is written to stdout
// instead of the text table, including each kernel's detected
// violations with provenance: DPST paths, locksets, the unserializable
// pattern name, observed-vs-inferred classification, and a rendered
// explanation.
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"

	"github.com/taskpar/avd/internal/harness"
)

func main() {
	workers := flag.Int("workers", 0, "worker threads (0 = GOMAXPROCS)")
	scale := flag.Float64("scale", 1, "problem-size multiplier")
	reps := flag.Int("reps", 1, "repetitions per benchmark")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON with violation provenance")
	batch := flag.Bool("batch", false, "measure with the step-granular access coalescer (adds batch counters to -json rows)")
	flag.Parse()
	collect := harness.CollectTable1
	if *batch {
		collect = harness.CollectTable1Batched
	}
	d, err := collect(*workers, *scale, *reps)
	if err != nil {
		log.Fatal(err)
	}
	if !*asJSON {
		harness.RenderTable1(os.Stdout, d)
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		log.Fatal(err)
	}
}
