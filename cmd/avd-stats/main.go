// Command avd-stats regenerates Table 1 of the paper: per-benchmark
// unique locations, DPST node counts, LCA query counts, and the unique
// LCA percentage, measured under the atomicity checker.
//
// Usage:
//
//	avd-stats [-workers N] [-scale F] [-reps N]
package main

import (
	"flag"
	"log"
	"os"

	"github.com/taskpar/avd/internal/harness"
)

func main() {
	workers := flag.Int("workers", 0, "worker threads (0 = GOMAXPROCS)")
	scale := flag.Float64("scale", 1, "problem-size multiplier")
	reps := flag.Int("reps", 1, "repetitions per benchmark")
	flag.Parse()
	if err := harness.Table1(os.Stdout, *workers, *scale, *reps); err != nil {
		log.Fatal(err)
	}
}
