// Command avd-viz converts a recorded avd trace into Chrome
// trace-event / Perfetto JSON for interactive inspection.
//
// Usage:
//
//	avd-viz [-i trace.json] [-o out.json] [-strict] [-no-violations]
//	avd-viz -spans [-i spans.json] [-o out.json]
//
// Workflow: record a trace (avd.Options.RecordTrace or avd-trace -gen),
// convert it with avd-viz, then open https://ui.perfetto.dev (or
// chrome://tracing) and load the output. Process "avd tasks" shows one
// track per task with task-lifetime, finish-scope, and DPST step spans;
// violation instants mark the access where each violation was first
// detected (hover for the human-readable explanation); chaos injections
// appear as instants on the affected task. Traces recorded live also
// get an "avd workers" process showing which scheduler worker executed
// each task over time, making steals visible as track migrations.
//
// With -spans the input is instead a JSON array of avd-serverd run
// spans (GET /debug/avd/spans?raw=1) and the output is the server
// timeline: one track per shard with async queued spans, serial
// execution spans, and terminal-state instants —
//
//	curl -s localhost:8056/debug/avd/spans?raw=1 | avd-viz -spans -o timeline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/taskpar/avd/internal/trace"
)

func main() {
	in := flag.String("i", "", "input trace file (default stdin)")
	out := flag.String("o", "", "output Perfetto JSON file (default stdout)")
	strict := flag.Bool("strict", false, "run the violation overlay with the strict-lock extension")
	noViolations := flag.Bool("no-violations", false, "skip the checker replay; export structure only")
	maxExpl := flag.Int("max-explanations", 100, "cap on rendered explanations in otherData")
	spans := flag.Bool("spans", false, "input is an avd-serverd run-span array (/debug/avd/spans?raw=1); export the server timeline")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}

	if *spans {
		var rs []trace.RunSpan
		if err := json.NewDecoder(r).Decode(&rs); err != nil {
			fatal(fmt.Errorf("decoding run spans: %w", err))
		}
		if err := trace.ExportRunSpans(rs, time.Now().UnixNano(), w); err != nil {
			fatal(err)
		}
		return
	}

	tr, err := trace.Decode(r)
	if err != nil {
		fatal(err)
	}
	err = trace.ExportPerfetto(tr, w, trace.PerfettoOptions{
		SkipViolations:   *noViolations,
		MaxExplanations:  *maxExpl,
		StrictLockChecks: *strict,
	})
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "avd-viz:", err)
	os.Exit(1)
}
