// Command avd-viz converts a recorded avd trace into Chrome
// trace-event / Perfetto JSON for interactive inspection.
//
// Usage:
//
//	avd-viz [-i trace.json] [-o out.json] [-strict] [-no-violations]
//
// Workflow: record a trace (avd.Options.RecordTrace or avd-trace -gen),
// convert it with avd-viz, then open https://ui.perfetto.dev (or
// chrome://tracing) and load the output. Process "avd tasks" shows one
// track per task with task-lifetime, finish-scope, and DPST step spans;
// violation instants mark the access where each violation was first
// detected (hover for the human-readable explanation); chaos injections
// appear as instants on the affected task. Traces recorded live also
// get an "avd workers" process showing which scheduler worker executed
// each task over time, making steals visible as track migrations.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/taskpar/avd/internal/trace"
)

func main() {
	in := flag.String("i", "", "input trace file (default stdin)")
	out := flag.String("o", "", "output Perfetto JSON file (default stdout)")
	strict := flag.Bool("strict", false, "run the violation overlay with the strict-lock extension")
	noViolations := flag.Bool("no-violations", false, "skip the checker replay; export structure only")
	maxExpl := flag.Int("max-explanations", 100, "cap on rendered explanations in otherData")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	tr, err := trace.Decode(r)
	if err != nil {
		fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	err = trace.ExportPerfetto(tr, w, trace.PerfettoOptions{
		SkipViolations:   *noViolations,
		MaxExplanations:  *maxExpl,
		StrictLockChecks: *strict,
	})
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "avd-viz:", err)
	os.Exit(1)
}
