// Vet unitchecker protocol: when the go command runs
// `go vet -vettool=avd-lint`, it first queries `avd-lint -V=full` for
// a version fingerprint, then invokes the tool once per package with a
// JSON config file describing the sources and the compiler's export
// data. This file implements that protocol with the standard library's
// gc importer, mirroring golang.org/x/tools/go/analysis/unitchecker.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"github.com/taskpar/avd/internal/analysis"
	"github.com/taskpar/avd/internal/analysis/suite"
)

// vetConfig is the JSON configuration the go command hands a vettool
// (cmd/go/internal/work's vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// printFlags answers the go command's -flags probe with the JSON flag
// inventory it uses to validate user-supplied vet flags.
func printFlags() int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		isBool := false
		if g, ok := f.Value.(flag.Getter); ok {
			_, isBool = g.Get().(bool)
		}
		out = append(out, jsonFlag{Name: f.Name, Bool: isBool, Usage: f.Usage})
	})
	data, err := json.Marshal(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avd-lint:", err)
		return 1
	}
	os.Stdout.Write(data)
	fmt.Println()
	return 0
}

// printVersion answers -V=full with the fingerprint format the go
// command's tool-ID cache expects.
func printVersion(mode string) int {
	if mode != "full" {
		fmt.Fprintf(os.Stderr, "avd-lint: unsupported flag value -V=%s\n", mode)
		return 1
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "avd-lint:", err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avd-lint:", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, "avd-lint:", err)
		return 1
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", os.Args[0], string(h.Sum(nil)))
	return 0
}

// unitcheck lints one package as directed by a vet config file.
func unitcheck(cfgPath string, asJSON bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avd-lint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "avd-lint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The go command requires the facts output file to exist even though
	// the avdlint suite exports no cross-package facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "avd-lint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "avd-lint:", err)
			return 1
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		return compilerImporter.Import(importPath)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tc := &types.Config{Importer: imp}
	if cfg.GoVersion != "" {
		tc.GoVersion = cfg.GoVersion
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "avd-lint:", err)
		return 1
	}

	diags, err := analysis.Run(fset, files, pkg, info, suite.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "avd-lint:", err)
		return 1
	}
	// Info-severity findings are advisory; under vet they would fail the
	// build, so only contract violations are reported here.
	var reportable []analysis.Diagnostic
	for _, d := range diags {
		if d.Severity != analysis.SeverityInfo {
			reportable = append(reportable, d)
		}
	}
	if asJSON {
		tree := map[string]map[string][]jsonFinding{}
		for _, d := range reportable {
			byAnalyzer := tree[cfg.ImportPath]
			if byAnalyzer == nil {
				byAnalyzer = map[string][]jsonFinding{}
				tree[cfg.ImportPath] = byAnalyzer
			}
			byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonFinding{
				Posn:     fset.Position(d.Pos).String(),
				Severity: string(d.Severity),
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(tree); err != nil {
			fmt.Fprintln(os.Stderr, "avd-lint:", err)
			return 1
		}
		return 0
	}
	for _, d := range reportable {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(reportable) > 0 {
		return 2
	}
	return 0
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
