// Command avd-lint statically enforces the avd instrumentation
// contract. It is the compile-time counterpart of the paper's LLVM
// instrumentation pass: the dynamic checker is only sound when every
// shared access reaches it through instrumented handles on the right
// task, and avd-lint verifies exactly that discipline.
//
// The suite (see internal/analysis/suite) ships seven analyzers:
//
//	taskcapture    closures must use their own *Task parameter; pre-go1.22 loop-variable captures
//	sharedescape   parallel-written plain variables are invisible to the checker
//	lockdiscipline unlock-without-lock, double-lock, critical sections spanning Spawn/Finish
//	sessionhandle  cross-session handles and use-after-Close
//	elision        handles provably serial (info: instrumentation removable)
//	observer       observer registrations that outlive their session
//	staticavd      compile-time atomicity-violation candidates over static MHP facts (info)
//
// Usage:
//
//	go run ./cmd/avd-lint [-json] [-fix] [packages...]
//	go vet -vettool=$(which avd-lint) ./...
//
// Packages default to ./... resolved against the enclosing module.
// Findings print vet-style (file:line:col: [analyzer] message); -json
// emits a machine-readable tree for diffing lint results across
// revisions: {package: {"findings": {analyzer: [finding]},
// "suppressed": N}}, where each finding carries its severity, message,
// and any suggested_fixes with exact edit spans, and suppressed counts
// the diagnostics silenced by //avdlint:ignore directives. Exit
// status: 0 clean (info findings do not fail the run), 1 operational
// error, 2 findings.
//
// -fix applies every suggested fix to the source files in place. Fix
// producers today are the elision analyzer (handles proven serial —
// by the single-step rule or the static MHP proof — have their
// Load/Store/Add calls rewritten to the uninstrumented
// Value/SetValue/AddValue accessors, removing their checker events
// without changing program behavior or analysis results) and
// taskcapture's captured-task rename. -fix is a standalone-mode
// feature (not available under go vet, whose protocol has no rewrite
// channel).
//
// When invoked by go vet (a single *.cfg argument), avd-lint speaks
// the vet unitchecker protocol: it type-checks from the compiler's
// export data and reports through vet's own plumbing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/taskpar/avd/internal/analysis"
	"github.com/taskpar/avd/internal/analysis/load"
	"github.com/taskpar/avd/internal/analysis/suite"
)

var (
	jsonFlag = flag.Bool("json", false, "emit machine-readable JSON diagnostics on stdout")
	fixFlag  = flag.Bool("fix", false, "apply suggested fixes to source files in place (standalone mode only)")
	versFlag = flag.String("V", "", "if 'full', print tool version and exit (go vet protocol)")
)

func main() {
	os.Exit(run())
}

func run() int {
	// go vet probes the tool's flag inventory with a bare -flags before
	// ever passing real arguments; answer it ahead of flag.Parse.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		return printFlags()
	}
	flag.Parse()
	if *versFlag != "" {
		return printVersion(*versFlag)
	}
	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return unitcheck(args[0], *jsonFlag)
	}
	return standalone(args, *jsonFlag, *fixFlag)
}

// jsonFinding is one diagnostic in -json output.
type jsonFinding struct {
	Posn           string    `json:"posn"`
	End            string    `json:"end,omitempty"`
	Severity       string    `json:"severity"`
	Message        string    `json:"message"`
	SuggestedFixes []jsonFix `json:"suggested_fixes,omitempty"`
}

// jsonFix is one mechanical rewrite attached to a finding.
type jsonFix struct {
	Message string     `json:"message"`
	Edits   []jsonEdit `json:"edits"`
}

// jsonEdit replaces the source span [posn, end) with new_text.
type jsonEdit struct {
	Posn    string `json:"posn"`
	End     string `json:"end"`
	NewText string `json:"new_text"`
}

// jsonPackage is one package's lint result in -json output: findings
// grouped by analyzer, plus the count of diagnostics silenced by
// //avdlint:ignore directives (so suppression debt stays visible when
// diffing lint output across revisions).
type jsonPackage struct {
	Findings   map[string][]jsonFinding `json:"findings,omitempty"`
	Suppressed int                      `json:"suppressed,omitempty"`
}

// standalone loads the requested packages from source and lints them.
func standalone(patterns []string, asJSON, applyFixes bool) int {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "avd-lint:", err)
		return 1
	}
	loader, err := load.NewModule(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avd-lint:", err)
		return 1
	}
	dirs, err := loader.Expand(wd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avd-lint:", err)
		return 1
	}
	analyzers := suite.All()
	tree := make(map[string]*jsonPackage)
	failures := 0
	exit := 0
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "avd-lint:", err)
			exit = 1
			continue
		}
		res, err := analysis.RunDetailed(loader.Fset, pkg.Files, pkg.Types, pkg.Info, analyzers,
			analysis.Options{GoVersion: pkg.GoVersion})
		if err != nil {
			fmt.Fprintln(os.Stderr, "avd-lint:", err)
			exit = 1
			continue
		}
		diags := res.Diags
		if applyFixes {
			if err := applyDiagnosticFixes(loader.Fset, wd, diags); err != nil {
				fmt.Fprintln(os.Stderr, "avd-lint:", err)
				exit = 1
			}
		}
		if asJSON && len(res.Suppressed) > 0 {
			jp := tree[pkg.Path]
			if jp == nil {
				jp = &jsonPackage{}
				tree[pkg.Path] = jp
			}
			jp.Suppressed = len(res.Suppressed)
		}
		for _, d := range diags {
			if d.Severity != analysis.SeverityInfo {
				failures++
			}
			if asJSON {
				jp := tree[pkg.Path]
				if jp == nil {
					jp = &jsonPackage{}
					tree[pkg.Path] = jp
				}
				if jp.Findings == nil {
					jp.Findings = make(map[string][]jsonFinding)
				}
				jp.Findings[d.Analyzer] = append(jp.Findings[d.Analyzer], jsonFinding{
					Posn:           relPosn(loader.Fset, wd, d.Pos),
					End:            relPosn(loader.Fset, wd, d.End),
					Severity:       string(d.Severity),
					Message:        d.Message,
					SuggestedFixes: jsonFixes(loader.Fset, wd, d.SuggestedFixes),
				})
			} else {
				prefix := ""
				if d.Severity == analysis.SeverityInfo {
					prefix = "info: "
				}
				fmt.Fprintf(os.Stderr, "%s: %s[%s] %s\n", relPosn(loader.Fset, wd, d.Pos), prefix, d.Analyzer, d.Message)
			}
		}
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(tree); err != nil {
			fmt.Fprintln(os.Stderr, "avd-lint:", err)
			return 1
		}
	}
	if exit != 0 {
		return exit
	}
	if failures > 0 {
		return 2
	}
	return 0
}

// jsonFixes renders suggested fixes with their edit spans.
func jsonFixes(fset *token.FileSet, base string, fixes []analysis.SuggestedFix) []jsonFix {
	var out []jsonFix
	for _, fix := range fixes {
		jf := jsonFix{Message: fix.Message}
		for _, e := range fix.TextEdits {
			jf.Edits = append(jf.Edits, jsonEdit{
				Posn:    relPosn(fset, base, e.Pos),
				End:     relPosn(fset, base, e.End),
				NewText: string(e.NewText),
			})
		}
		out = append(out, jf)
	}
	return out
}

// applyDiagnosticFixes groups every suggested fix's edits by file and
// rewrites each file in place. Edits from distinct diagnostics never
// overlap (each fix touches only its own handle's call sites), so one
// splice pass per file suffices.
func applyDiagnosticFixes(fset *token.FileSet, base string, diags []analysis.Diagnostic) error {
	edits := make(map[string][]analysis.TextEdit)
	for _, d := range diags {
		for _, fix := range d.SuggestedFixes {
			for _, e := range fix.TextEdits {
				file := fset.Position(e.Pos).Filename
				edits[file] = append(edits[file], e)
			}
		}
	}
	var files []string
	for file := range edits {
		files = append(files, file)
	}
	sort.Strings(files)
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		fixed := analysis.ApplyEdits(fset, src, edits[file])
		if string(fixed) == string(src) {
			continue
		}
		if err := os.WriteFile(file, fixed, 0o644); err != nil {
			return err
		}
		rel := file
		if r, err := filepath.Rel(base, file); err == nil && !strings.HasPrefix(r, "..") {
			rel = r
		}
		fmt.Fprintf(os.Stderr, "avd-lint: fixed %s (%d edits)\n", rel, len(edits[file]))
	}
	return nil
}

// relPosn renders a position with the file path relative to base.
func relPosn(fset *token.FileSet, base string, pos token.Pos) string {
	if !pos.IsValid() {
		return ""
	}
	p := fset.Position(pos)
	if rel, err := filepath.Rel(base, p.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		p.Filename = rel
	}
	return p.String()
}
