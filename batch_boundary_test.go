package avd_test

import (
	"testing"

	avd "github.com/taskpar/avd"
)

// These tests pin the coalescer's flush points to the scheduler's step
// and lock boundaries with exact counter arithmetic: BatchFlushes
// counts only non-empty drains, BatchedAccesses counts the accesses
// they carried, and FilterHits counts accesses the dedup engine proved
// redundant before buffering. Single-worker sessions make the counts
// deterministic.

// batchStats runs body in a batched single-worker session and returns
// the final stats.
func batchStats(t *testing.T, body func(*avd.Session, *avd.Task)) avd.Stats {
	t.Helper()
	return batchStatsOpts(t, avd.Options{Workers: 1, Batch: true}, body)
}

func batchStatsOpts(t *testing.T, opts avd.Options, body func(*avd.Session, *avd.Task)) avd.Stats {
	t.Helper()
	s := avd.NewSession(opts)
	defer s.Close()
	s.Run(func(tk *avd.Task) { body(s, tk) })
	return s.Report().Stats
}

// TestBatchFlushAtSpawnAndFinish: one access buffered before Finish is
// flushed by the finish-begin boundary, one buffered inside the finish
// body is flushed by Spawn, and the spawned child's access is flushed
// at its task end. Three accesses, three non-empty flushes.
func TestBatchFlushAtSpawnAndFinish(t *testing.T) {
	st := batchStats(t, func(s *avd.Session, tk *avd.Task) {
		v := s.NewIntVar("V")
		w := s.NewIntVar("W")
		u := s.NewIntVar("U")
		v.Store(tk, 1) // flushed by OnFinishBegin
		tk.Finish(func(tk *avd.Task) {
			w.Store(tk, 1) // flushed by OnSpawn
			tk.Spawn(func(tk *avd.Task) {
				u.Store(tk, 1) // flushed at child task end
			})
		})
	})
	if st.BatchFlushes != 3 || st.BatchedAccesses != 3 {
		t.Errorf("spawn/finish boundaries: got %d flushes of %d accesses, want 3 of 3",
			st.BatchFlushes, st.BatchedAccesses)
	}
	if st.FilterHits != 0 || st.FilterMisses != 3 {
		t.Errorf("spawn/finish boundaries: got %d/%d dedup hits/misses, want 0/3",
			st.FilterHits, st.FilterMisses)
	}
}

// TestBatchFlushAtSync: a CilkSpawn opens the implicit finish scope
// (flushing the access buffered before it), the child flushes at its
// end, and the access after Sync flushes at the root's task end. The
// Sync boundary itself drains an empty buffer, which must not count.
func TestBatchFlushAtSync(t *testing.T) {
	st := batchStats(t, func(s *avd.Session, tk *avd.Task) {
		v := s.NewIntVar("V")
		w := s.NewIntVar("W")
		u := s.NewIntVar("U")
		v.Store(tk, 1) // flushed by the implicit finish open of CilkSpawn
		tk.CilkSpawn(func(tk *avd.Task) {
			w.Store(tk, 1) // flushed at child task end
		})
		tk.Sync()      // drains an empty buffer: no flush counted
		u.Store(tk, 1) // flushed at root task end
	})
	if st.BatchFlushes != 3 || st.BatchedAccesses != 3 {
		t.Errorf("sync boundaries: got %d flushes of %d accesses, want 3 of 3",
			st.BatchFlushes, st.BatchedAccesses)
	}
}

// TestBatchFlushAtLockBoundaries: lock acquisition and release each
// close the open batch, so a store before, inside, and after a critical
// section lands in three separate flushes even though the step never
// changes. The dedup engine must not skip any of them — each runs under
// a different lockset, and skipping one would lose a lock-transition
// pattern.
func TestBatchFlushAtLockBoundaries(t *testing.T) {
	st := batchStats(t, func(s *avd.Session, tk *avd.Task) {
		v := s.NewIntVar("V")
		m := s.NewMutex("L")
		v.Store(tk, 1) // flushed by OnAcquire
		m.Lock(tk)
		v.Store(tk, 2) // flushed by OnRelease
		m.Unlock(tk)
		v.Store(tk, 3) // flushed at task end
	})
	if st.BatchFlushes != 3 || st.BatchedAccesses != 3 {
		t.Errorf("lock boundaries: got %d flushes of %d accesses, want 3 of 3",
			st.BatchFlushes, st.BatchedAccesses)
	}
	if st.FilterHits != 0 {
		t.Errorf("lock boundaries: %d accesses deduplicated across lock transitions, want 0", st.FilterHits)
	}
}

// TestBatchFlushAtOverflow: a single step touching more distinct
// locations than the batch holds must flush mid-step on buffer
// overflow, then drain the remainder at task end.
func TestBatchFlushAtOverflow(t *testing.T) {
	const n = 300 // > batchCap (256), < 2*batchCap
	st := batchStats(t, func(s *avd.Session, tk *avd.Task) {
		a := s.NewIntArray("A", n)
		for i := 0; i < n; i++ {
			a.Store(tk, i, int64(i))
		}
	})
	if st.BatchFlushes != 2 || st.BatchedAccesses != int64(n) {
		t.Errorf("overflow: got %d flushes of %d accesses, want 2 of %d",
			st.BatchFlushes, st.BatchedAccesses, n)
	}
}

// TestBatchDedupRepeatReads: repeat reads of one location inside one
// step buffer exactly twice (the first offers the location, the second
// proves the read-repeat pattern reachable). With window elision on
// (the default), the second read's dedup update mirrors the saturated
// word into the handle layer, so every further read is answered there —
// counted as a window elision — without consulting the dedup table at
// all. With elision disabled, the same repeats are answered by the
// dedup word and counted as filter hits.
func TestBatchDedupRepeatReads(t *testing.T) {
	repeatReads := func(s *avd.Session, tk *avd.Task) {
		v := s.NewIntVar("V")
		for i := 0; i < 10; i++ {
			v.Load(tk)
		}
	}
	t.Run("elision", func(t *testing.T) {
		st := batchStats(t, repeatReads)
		if st.BatchFlushes != 1 || st.BatchedAccesses != 2 {
			t.Errorf("repeat reads: got %d flushes of %d accesses, want 1 of 2",
				st.BatchFlushes, st.BatchedAccesses)
		}
		if st.WindowElisions != 8 || st.FilterHits != 0 || st.FilterMisses != 2 {
			t.Errorf("repeat reads: got %d elisions, %d/%d dedup hits/misses, want 8, 0/2",
				st.WindowElisions, st.FilterHits, st.FilterMisses)
		}
	})
	t.Run("no-elision", func(t *testing.T) {
		st := batchStatsOpts(t, avd.Options{Workers: 1, Batch: true, DisableWindowElision: true}, repeatReads)
		if st.BatchFlushes != 1 || st.BatchedAccesses != 2 {
			t.Errorf("repeat reads: got %d flushes of %d accesses, want 1 of 2",
				st.BatchFlushes, st.BatchedAccesses)
		}
		if st.WindowElisions != 0 || st.FilterHits != 8 || st.FilterMisses != 2 {
			t.Errorf("repeat reads: got %d elisions, %d/%d dedup hits/misses, want 0, 8/2",
				st.WindowElisions, st.FilterHits, st.FilterMisses)
		}
	})
}

// TestWindowElisionRespectsBoundaries: the elision cache dies at every
// window boundary, so it can never skip an access the deduplicator
// itself would buffer. Ten read-read pairs separated by lock
// round-trips: every window's FIRST read must reach the buffer (it
// offers the location under the new lockset), and only the repeat
// within the same locked window is elided — the first pair's repeat is
// the in-window second offer, so nine of the twenty reads elide,
// exactly the nine the deduplicator counted as filter hits before the
// front end existed (the step-scoped seen word survives lock
// transitions, so later windows saturate on their first read).
func TestWindowElisionRespectsBoundaries(t *testing.T) {
	st := batchStats(t, func(s *avd.Session, tk *avd.Task) {
		v := s.NewIntVar("V")
		m := s.NewMutex("L")
		for i := 0; i < 10; i++ {
			m.Lock(tk)
			v.Load(tk)
			v.Load(tk)
			m.Unlock(tk)
		}
	})
	if st.WindowElisions != 9 || st.FilterHits != 0 || st.BatchedAccesses != 11 {
		t.Errorf("lock-separated read pairs: got %d elisions, %d dedup hits, %d buffered; want 9, 0, 11",
			st.WindowElisions, st.FilterHits, st.BatchedAccesses)
	}
	st = batchStats(t, func(s *avd.Session, tk *avd.Task) {
		v := s.NewIntVar("V")
		m := s.NewMutex("L")
		m.Lock(tk)
		for i := 0; i < 10; i++ {
			v.Load(tk)
		}
		m.Unlock(tk)
	})
	if st.WindowElisions != 8 {
		t.Errorf("locked repeat reads: %d window elisions, want 8", st.WindowElisions)
	}
}
