package avd_test

import (
	"sync/atomic"
	"testing"

	avd "github.com/taskpar/avd"
)

// TestObserverUnsetZeroAllocs pins the live-observability contract from
// DESIGN.md: leaving Options.Observer nil must keep the warm
// instrumented hot path allocation-free, including on accesses that
// re-detect already-reported violations (the provenance capture and
// observer dispatch must both sit behind the duplicate probe).
func TestObserverUnsetZeroAllocs(t *testing.T) {
	s := avd.NewSession(avd.Options{Workers: 1})
	defer s.Close()
	x := s.NewIntVar("X")
	var allocs float64
	s.Run(func(tk *avd.Task) {
		// Manufacture a violation so the measured accesses repeatedly
		// rediscover a known triple: parallel read-modify-writes of X.
		tk.Finish(func(tk *avd.Task) {
			tk.Spawn(func(tk *avd.Task) { x.Add(tk, 1) })
			tk.Spawn(func(tk *avd.Task) { x.Add(tk, 1) })
		})
		for i := 0; i < 96; i++ {
			x.Store(tk, x.Load(tk)+1)
		}
		allocs = testing.AllocsPerRun(200, func() {
			x.Store(tk, x.Load(tk)+1)
		})
	})
	if allocs != 0 {
		t.Errorf("warm load+store allocates %.1f objects per op with no observer, want 0", allocs)
	}
	if n := s.Report().ViolationCount; n == 0 {
		t.Fatal("expected the parallel increments to produce a violation")
	}
}

// TestObserverCallbacks drives every observer event class: violations
// from parallel conflicting accesses, drops + saturation from a
// MaxViolations cap of 1, and a recovered panic.
func TestObserverCallbacks(t *testing.T) {
	var violations, drops, saturations, panics atomic.Int64
	s := avd.NewSession(avd.Options{
		Workers:       2,
		MaxViolations: 1,
		RecoverPanics: true,
		Observer: &avd.Observer{
			OnViolation:  func(avd.Violation) { violations.Add(1) },
			OnDrop:       func(avd.DropEvent) { drops.Add(1) },
			OnSaturation: func() { saturations.Add(1) },
			OnTaskPanic:  func(avd.TaskPanic) { panics.Add(1) },
		},
	})
	defer s.Close()
	x := s.NewIntVar("X")
	y := s.NewIntVar("Y")
	s.Run(func(tk *avd.Task) {
		tk.Finish(func(tk *avd.Task) {
			tk.Spawn(func(tk *avd.Task) { x.Add(tk, 1); y.Add(tk, 1) })
			tk.Spawn(func(tk *avd.Task) { x.Add(tk, 1); y.Add(tk, 1) })
			tk.Spawn(func(tk *avd.Task) { panic("boom") })
		})
	})
	rep := s.Report()
	if violations.Load() == 0 {
		t.Error("OnViolation never fired")
	}
	if rep.Drops.Violations > 0 && drops.Load() == 0 {
		t.Errorf("reporter dropped %d violations but OnDrop never fired", rep.Drops.Violations)
	}
	if rep.Saturated && saturations.Load() != 1 {
		t.Errorf("OnSaturation fired %d times on a saturated session, want exactly 1", saturations.Load())
	}
	if panics.Load() != 1 {
		t.Errorf("OnTaskPanic fired %d times, want 1", panics.Load())
	}
	if rep.PanicCount != 1 {
		t.Fatalf("PanicCount = %d, want 1", rep.PanicCount)
	}
	snap := s.Snapshot()
	if snap.Events.TaskPanics != 1 {
		t.Errorf("snapshot Events.TaskPanics = %d, want 1", snap.Events.TaskPanics)
	}
	if snap.Events.Violations != violations.Load() {
		t.Errorf("snapshot Events.Violations = %d, observer saw %d", snap.Events.Violations, violations.Load())
	}
}

// TestSnapshotConsistency polls Snapshot concurrently with a running
// parallel workload (run under -race in CI): counters must be monotone
// from poll to poll, and the snapshot taken after Run must agree with
// the final Report.
func TestSnapshotConsistency(t *testing.T) {
	s := avd.NewSession(avd.Options{Workers: 4})
	defer s.Close()
	x := s.NewIntVar("X")
	a := s.NewIntArray("A", 64)

	done := make(chan struct{})
	polls := 0
	var prev avd.Snapshot
	go func() {
		defer close(done)
		for polls < 2000 {
			snap := s.Snapshot()
			polls++
			if snap.ViolationCount < prev.ViolationCount {
				t.Errorf("ViolationCount went backwards: %d -> %d", prev.ViolationCount, snap.ViolationCount)
				return
			}
			if snap.Stats.LCAQueries < prev.Stats.LCAQueries {
				t.Errorf("LCAQueries went backwards: %d -> %d", prev.Stats.LCAQueries, snap.Stats.LCAQueries)
				return
			}
			if snap.Stats.DPSTNodes < prev.Stats.DPSTNodes {
				t.Errorf("DPSTNodes went backwards: %d -> %d", prev.Stats.DPSTNodes, snap.Stats.DPSTNodes)
				return
			}
			if snap.Events.Violations < prev.Events.Violations {
				t.Errorf("Events.Violations went backwards: %d -> %d", prev.Events.Violations, snap.Events.Violations)
				return
			}
			prev = snap
		}
	}()

	s.Run(func(tk *avd.Task) {
		avd.ParallelFor(tk, 0, 256, 8, func(tk *avd.Task, i int) {
			x.Add(tk, 1)
			a.Store(tk, i%64, int64(i))
			_ = a.Load(tk, (i+1)%64)
		})
	})
	<-done

	final := s.Snapshot()
	rep := s.Report()
	if final.ViolationCount != rep.ViolationCount {
		t.Errorf("final snapshot ViolationCount = %d, Report = %d", final.ViolationCount, rep.ViolationCount)
	}
	if final.Stats != rep.Stats {
		t.Errorf("final snapshot Stats = %+v, Report = %+v", final.Stats, rep.Stats)
	}
	if final.Drops != rep.Drops {
		t.Errorf("final snapshot Drops = %+v, Report = %+v", final.Drops, rep.Drops)
	}
	if final.MemoryUsed != rep.MemoryUsed {
		t.Errorf("final snapshot MemoryUsed = %d, Report = %d", final.MemoryUsed, rep.MemoryUsed)
	}
	if polls == 0 {
		t.Fatal("snapshot poller never ran")
	}
}

// TestSnapshotChaosCounters checks the chaos plane's live counters and
// the inject annotations recorded into traces.
func TestSnapshotChaosCounters(t *testing.T) {
	s := avd.NewSession(avd.Options{
		Workers:       2,
		RecordTrace:   true,
		RecoverPanics: true,
		Chaos:         &avd.ChaosConfig{Seed: 42, StealProb: 0.5, PanicProb: 0.2},
	})
	defer s.Close()
	x := s.NewIntVar("X")
	s.Run(func(tk *avd.Task) {
		tk.Finish(func(tk *avd.Task) {
			for i := 0; i < 32; i++ {
				tk.Spawn(func(tk *avd.Task) { x.Add(tk, 1) })
			}
		})
	})
	snap := s.Snapshot()
	injected := snap.Chaos.ForcedSteals + snap.Chaos.InjectedPanics
	if injected == 0 {
		t.Skip("chaos injected nothing at this seed; counters untestable")
	}
	if got := s.ChaosStats(); got != snap.Chaos {
		t.Errorf("snapshot Chaos = %+v, ChaosStats = %+v", snap.Chaos, got)
	}
	tr := s.RecordedTrace()
	injects := 0
	for _, e := range tr.Events {
		if e.Kind.String() == "inject" {
			injects++
		}
	}
	if int64(injects) != injected {
		t.Errorf("trace has %d inject annotations, chaos plane injected %d", injects, injected)
	}
}

// TestSnapshotBatchCounters checks that the coalescer's flush and
// batched-access events flow through the live observability fabric: a
// batched session's Snapshot carries the same totals the final Report
// computes from the checker's striped counters.
func TestSnapshotBatchCounters(t *testing.T) {
	s := avd.NewSession(avd.Options{Workers: 2, Batch: true})
	defer s.Close()
	x := s.NewIntVar("X")
	s.Run(func(tk *avd.Task) {
		avd.ParallelFor(tk, 0, 64, 4, func(tk *avd.Task, i int) {
			x.Add(tk, 1)
		})
	})
	snap := s.Snapshot()
	rep := s.Report()
	if rep.Stats.BatchFlushes == 0 || rep.Stats.BatchedAccesses == 0 {
		t.Fatalf("batched run recorded no coalescer activity: %d flushes of %d accesses",
			rep.Stats.BatchFlushes, rep.Stats.BatchedAccesses)
	}
	if snap.Events.BatchFlushes != rep.Stats.BatchFlushes {
		t.Errorf("snapshot BatchFlushes = %d, Report = %d", snap.Events.BatchFlushes, rep.Stats.BatchFlushes)
	}
	if snap.Events.BatchedAccesses != rep.Stats.BatchedAccesses {
		t.Errorf("snapshot BatchedAccesses = %d, Report = %d", snap.Events.BatchedAccesses, rep.Stats.BatchedAccesses)
	}
}
